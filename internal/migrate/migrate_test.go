package migrate

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/entity"
	"repro/internal/locks"
	"repro/internal/lsdb"
	"repro/internal/txn"
)

func customerType() *entity.Type {
	return &entity.Type{
		Name: "Customer",
		Fields: []entity.Field{
			{Name: "name", Type: entity.String},
			{Name: "country", Type: entity.String},
		},
	}
}

func newStack(t *testing.T) (*Registry, *lsdb.DB, *txn.Manager, *locks.Manager, *Migrator) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register(customerType()); err != nil {
		t.Fatal(err)
	}
	db := lsdb.Open(lsdb.Options{Node: "u1", SnapshotEvery: 16, Validation: entity.Managed})
	if err := db.RegisterType(customerType()); err != nil {
		t.Fatal(err)
	}
	lm := locks.NewManager(locks.Options{})
	mgr := txn.NewManager(db, lm, nil, txn.Options{Node: "u1"})
	return reg, db, mgr, lm, NewMigrator(reg, db, mgr, lm)
}

func cust(id string) entity.Key { return entity.Key{Type: "Customer", ID: id} }

func seedCustomers(t *testing.T, mgr *txn.Manager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := mgr.Run(txn.Solipsistic, nil, 0, func(tx *txn.Txn) error {
			return tx.Update(cust(fmt.Sprintf("C%03d", i)),
				entity.Set("name", fmt.Sprintf("customer %d", i)),
				entity.Set("country", "DE"))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistryVersioning(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(customerType()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(customerType()); err == nil {
		t.Fatal("double registration accepted")
	}
	if err := reg.Register(&entity.Type{Name: ""}); err == nil {
		t.Fatal("invalid type accepted")
	}
	active, err := reg.Active("Customer")
	if err != nil || active.Version != 1 {
		t.Fatalf("Active = %+v %v", active, err)
	}
	if _, err := reg.Active("Nope"); !errors.Is(err, ErrUnknownType) {
		t.Fatal("Active of unknown type should fail")
	}
	if _, err := reg.Version("Customer", 9); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatal("Version lookup should fail")
	}
	if len(reg.Types()) != 1 || reg.Types()[0] != "Customer" {
		t.Fatalf("Types = %v", reg.Types())
	}
}

func TestAdmissibilityRules(t *testing.T) {
	reg := NewRegistry()
	reg.Register(customerType())
	cases := []struct {
		name string
		mig  Migration
		ok   bool
	}{
		{"add optional field", Migration{Type: "Customer", AddFields: []entity.Field{{Name: "segment", Type: entity.String}}}, true},
		{"add required field without backfill", Migration{Type: "Customer", AddFields: []entity.Field{{Name: "tier", Type: entity.String, Required: true}}}, false},
		{"add required field with backfill", Migration{Type: "Customer", AddFields: []entity.Field{{Name: "tier", Type: entity.String, Required: true}}, Backfill: func(*entity.State) []entity.Op { return nil }}, true},
		{"retype existing field", Migration{Type: "Customer", AddFields: []entity.Field{{Name: "country", Type: entity.Int}}}, false},
		{"re-add identical field", Migration{Type: "Customer", AddFields: []entity.Field{{Name: "country", Type: entity.String}}}, true},
		{"remove field without force", Migration{Type: "Customer", RemoveFields: []string{"country"}}, false},
		{"remove field with force", Migration{Type: "Customer", RemoveFields: []string{"country"}, ForceRemove: true}, true},
		{"remove unknown field", Migration{Type: "Customer", RemoveFields: []string{"ghost"}, ForceRemove: true}, false},
		{"add child collection", Migration{Type: "Customer", AddChildren: []entity.ChildCollection{{Name: "contacts"}}}, true},
		{"unknown type", Migration{Type: "Ghost"}, false},
	}
	for _, tc := range cases {
		err := reg.CheckAdmissible(tc.mig)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: should have been rejected", tc.name)
		}
	}
}

func TestProposeBuildsNextVersion(t *testing.T) {
	reg := NewRegistry()
	reg.Register(customerType())
	vt, err := reg.Propose(Migration{
		Type:        "Customer",
		AddFields:   []entity.Field{{Name: "segment", Type: entity.String}},
		AddChildren: []entity.ChildCollection{{Name: "contacts", Fields: []entity.Field{{Name: "email", Type: entity.String}}}},
		Description: "add segmentation",
	})
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if vt.Version != 2 {
		t.Fatalf("version = %d", vt.Version)
	}
	if len(vt.Type.Fields) != 3 || len(vt.Type.Children) != 1 {
		t.Fatalf("new type = %+v", vt.Type)
	}
	if len(reg.History("Customer")) != 2 {
		t.Fatalf("history = %d", len(reg.History("Customer")))
	}
	// Removing a field with force produces a version without it.
	vt3, err := reg.Propose(Migration{Type: "Customer", RemoveFields: []string{"country"}, ForceRemove: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range vt3.Type.Fields {
		if f.Name == "country" {
			t.Fatal("removed field still present")
		}
	}
}

func TestApplyOnlineBackfill(t *testing.T) {
	_, db, mgr, _, mig := newStack(t)
	seedCustomers(t, mgr, 20)
	vt, progress, err := mig.Apply(Migration{
		Type:      "Customer",
		AddFields: []entity.Field{{Name: "region", Type: entity.String}},
		Backfill: func(st *entity.State) []entity.Op {
			if st.StringField("country") == "DE" {
				return []entity.Op{entity.Set("region", "EMEA")}
			}
			return nil
		},
		Description: "derive region from country",
	}, Online, 8)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if vt.Version != 2 {
		t.Fatalf("version = %d", vt.Version)
	}
	if progress.Entities != 20 || progress.Backfills != 20 || progress.Errors != 0 {
		t.Fatalf("progress = %+v", progress)
	}
	st, _, err := db.Current(cust("C005"))
	if err != nil || st.StringField("region") != "EMEA" {
		t.Fatalf("backfill missing: %v %v", st, err)
	}
	// New-schema writes are accepted after the migration.
	_, err = mgr.Run(txn.Solipsistic, nil, 0, func(tx *txn.Txn) error {
		return tx.Update(cust("C999"), entity.Set("name", "new"), entity.Set("region", "APJ"))
	})
	if err != nil {
		t.Fatalf("post-migration write: %v", err)
	}
}

func TestApplyWithoutBackfill(t *testing.T) {
	_, _, mgr, _, mig := newStack(t)
	seedCustomers(t, mgr, 3)
	_, progress, err := mig.Apply(Migration{
		Type:      "Customer",
		AddFields: []entity.Field{{Name: "notes", Type: entity.String}},
	}, Online, 8)
	if err != nil {
		t.Fatal(err)
	}
	if progress.Entities != 0 || progress.Backfills != 0 {
		t.Fatalf("no-backfill migration should not touch entities: %+v", progress)
	}
}

func TestApplyInadmissibleRejected(t *testing.T) {
	_, _, _, _, mig := newStack(t)
	_, _, err := mig.Apply(Migration{Type: "Customer", RemoveFields: []string{"country"}}, Online, 8)
	if !errors.Is(err, ErrInadmissible) {
		t.Fatalf("want ErrInadmissible, got %v", err)
	}
}

func TestApplyBackfillSkipsEntitiesNeedingNothing(t *testing.T) {
	_, _, mgr, _, mig := newStack(t)
	seedCustomers(t, mgr, 4)
	_, progress, err := mig.Apply(Migration{
		Type:      "Customer",
		AddFields: []entity.Field{{Name: "region", Type: entity.String}},
		Backfill: func(st *entity.State) []entity.Op {
			if st.Key.ID == "C000" {
				return []entity.Op{entity.Set("region", "EMEA")}
			}
			return nil
		},
	}, Online, 8)
	if err != nil {
		t.Fatal(err)
	}
	if progress.Backfills != 1 || progress.Skipped != 3 {
		t.Fatalf("progress = %+v", progress)
	}
}

func TestOnlineMigrationDoesNotBlockWriters(t *testing.T) {
	_, _, mgr, lm, mig := newStack(t)
	seedCustomers(t, mgr, 200)
	var writerErrors atomic.Int64
	var writes atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Live writers in Online mode check the migration lock in shared
			// mode; it is never held, so they proceed immediately.
			owner := locks.Owner(fmt.Sprintf("writer-%d", i))
			if lm.IsLockedByOther(owner, MigrationLockResource("Customer"), locks.Shared) {
				writerErrors.Add(1)
			} else {
				_, err := mgr.Run(txn.Solipsistic, nil, 0, func(tx *txn.Txn) error {
					return tx.Update(cust(fmt.Sprintf("C%03d", i%200)), entity.Set("name", "updated"))
				})
				if err != nil {
					writerErrors.Add(1)
				} else {
					writes.Add(1)
				}
			}
			i++
		}
	}()
	_, progress, err := mig.Apply(Migration{
		Type:      "Customer",
		AddFields: []entity.Field{{Name: "region", Type: entity.String}},
		Backfill:  func(*entity.State) []entity.Op { return []entity.Op{entity.Set("region", "EMEA")} },
	}, Online, 16)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if progress.Backfills == 0 {
		t.Fatal("backfill did nothing")
	}
	if writerErrors.Load() != 0 {
		t.Fatalf("writers blocked or failed %d times during online migration", writerErrors.Load())
	}
	if writes.Load() == 0 {
		t.Fatal("no live writes happened during the online migration window")
	}
}

func TestStopTheWorldMigrationHoldsCoarseLock(t *testing.T) {
	_, _, mgr, lm, mig := newStack(t)
	seedCustomers(t, mgr, 50)
	// The backfill callback runs while the migration lock is held; observe it
	// from there so the check is deterministic.
	var observedLocked atomic.Bool
	_, progress, err := mig.Apply(Migration{
		Type:      "Customer",
		AddFields: []entity.Field{{Name: "region", Type: entity.String}},
		Backfill: func(*entity.State) []entity.Op {
			if lm.IsLockedByOther("observer", MigrationLockResource("Customer"), locks.Shared) {
				observedLocked.Store(true)
			}
			return []entity.Op{entity.Set("region", "EMEA")}
		},
	}, StopTheWorld, 8)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if progress.Backfills != 50 {
		t.Fatalf("progress = %+v", progress)
	}
	if !observedLocked.Load() {
		t.Fatal("stop-the-world migration never held the coarse lock")
	}
	// The lock is released afterwards.
	if lm.IsLockedByOther("observer", MigrationLockResource("Customer"), locks.Shared) {
		t.Fatal("migration lock leaked")
	}
}

func TestStrategyString(t *testing.T) {
	if Online.String() != "online" || StopTheWorld.String() != "stop-the-world" {
		t.Fatal("strategy names wrong")
	}
}
