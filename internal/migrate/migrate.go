// Package migrate implements dynamic schema migration with continuous
// availability (section 3.1): "a timelessly sustainable application
// environment must provide both dynamic schema migration and dynamic
// application migration capabilities, with continuous availability. The
// infrastructure environment must proscribe admissible changes to schemas and
// applications; not all changes will be supportable, and only supportable
// changes can be permitted."
//
// A migration declares the schema delta and an optional backfill transform.
// The registry checks admissibility; the migrator applies the backfill online
// (in batches, concurrently with live traffic, one entity per transaction) or
// stop-the-world (taking a coarse logical lock over the whole type), which is
// the baseline experiment E12 compares against.
package migrate

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/entity"
	"repro/internal/locks"
	"repro/internal/lsdb"
	"repro/internal/txn"
)

// Common errors.
var (
	// ErrInadmissible is returned when a migration would break deployed
	// applications (e.g. removing or retyping a field in place).
	ErrInadmissible = errors.New("migrate: inadmissible schema change")
	// ErrUnknownType is returned when migrating a type that is not
	// registered.
	ErrUnknownType = errors.New("migrate: unknown entity type")
	// ErrNoSuchVersion is returned when asking for an unregistered version.
	ErrNoSuchVersion = errors.New("migrate: no such schema version")
)

// Migration describes one schema change for an entity type.
type Migration struct {
	Type string
	// AddFields lists new root fields (additive changes are admissible).
	AddFields []entity.Field
	// AddChildren lists new child collections.
	AddChildren []entity.ChildCollection
	// RemoveFields lists fields to drop. Removing fields is inadmissible
	// unless ForceRemove is set (a deliberate, reviewed decision).
	RemoveFields []string
	ForceRemove  bool
	// Backfill computes operations to apply to each existing entity so it
	// satisfies the new schema (e.g. populate the new field from old ones).
	// It may return nil for entities that need no change. The state passed
	// in is frozen and shared zero-copy with the store's cache: read it,
	// derive ops from it, but never mutate it.
	Backfill func(*entity.State) []entity.Op
	// Description is recorded in the migration history.
	Description string
}

// VersionedType is one registered version of an entity type.
type VersionedType struct {
	Version     int
	Type        *entity.Type
	Description string
	Applied     time.Time
}

// Registry holds the version history of every entity type.
type Registry struct {
	mu       sync.Mutex
	versions map[string][]VersionedType
	clock    func() time.Time
}

// NewRegistry creates an empty schema registry.
func NewRegistry() *Registry {
	return &Registry{versions: map[string][]VersionedType{}, clock: time.Now}
}

// Register adds version 1 of a type.
func (r *Registry) Register(t *entity.Type) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.versions[t.Name]) > 0 {
		return fmt.Errorf("migrate: type %s already registered; use Propose", t.Name)
	}
	r.versions[t.Name] = []VersionedType{{Version: 1, Type: t, Description: "initial", Applied: r.clock()}}
	return nil
}

// Active returns the current version of a type.
func (r *Registry) Active(name string) (VersionedType, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.versions[name]
	if len(vs) == 0 {
		return VersionedType{}, fmt.Errorf("%w: %s", ErrUnknownType, name)
	}
	return vs[len(vs)-1], nil
}

// Version returns a specific version of a type.
func (r *Registry) Version(name string, version int) (VersionedType, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.versions[name] {
		if v.Version == version {
			return v, nil
		}
	}
	return VersionedType{}, fmt.Errorf("%w: %s v%d", ErrNoSuchVersion, name, version)
}

// History returns all versions of a type in order.
func (r *Registry) History(name string) []VersionedType {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]VersionedType(nil), r.versions[name]...)
}

// Types returns all registered type names, sorted.
func (r *Registry) Types() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.versions))
	for n := range r.versions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CheckAdmissible validates a migration against the active version without
// applying it.
func (r *Registry) CheckAdmissible(m Migration) error {
	active, err := r.Active(m.Type)
	if err != nil {
		return err
	}
	existing := map[string]entity.Field{}
	for _, f := range active.Type.Fields {
		existing[f.Name] = f
	}
	for _, f := range m.AddFields {
		if old, ok := existing[f.Name]; ok {
			if old.Type != f.Type {
				return fmt.Errorf("%w: field %s.%s changes type %s -> %s", ErrInadmissible, m.Type, f.Name, old.Type, f.Type)
			}
			continue // re-adding an identical field is a no-op
		}
		if f.Required && m.Backfill == nil {
			return fmt.Errorf("%w: new required field %s.%s needs a backfill", ErrInadmissible, m.Type, f.Name)
		}
	}
	for _, name := range m.RemoveFields {
		if _, ok := existing[name]; !ok {
			return fmt.Errorf("%w: removing unknown field %s.%s", ErrInadmissible, m.Type, name)
		}
		if !m.ForceRemove {
			return fmt.Errorf("%w: removing field %s.%s requires ForceRemove", ErrInadmissible, m.Type, name)
		}
	}
	childNames := map[string]bool{}
	for _, c := range active.Type.Children {
		childNames[c.Name] = true
	}
	for _, c := range m.AddChildren {
		if childNames[c.Name] {
			return fmt.Errorf("%w: child collection %s.%s already exists", ErrInadmissible, m.Type, c.Name)
		}
	}
	return nil
}

// Propose validates the migration and, if admissible, registers the new
// schema version and returns it. Backfill is the migrator's job.
func (r *Registry) Propose(m Migration) (VersionedType, error) {
	if err := r.CheckAdmissible(m); err != nil {
		return VersionedType{}, err
	}
	active, err := r.Active(m.Type)
	if err != nil {
		return VersionedType{}, err
	}
	next := &entity.Type{Name: m.Type}
	removed := map[string]bool{}
	for _, f := range m.RemoveFields {
		removed[f] = true
	}
	for _, f := range active.Type.Fields {
		if !removed[f.Name] {
			next.Fields = append(next.Fields, f)
		}
	}
	have := map[string]bool{}
	for _, f := range next.Fields {
		have[f.Name] = true
	}
	for _, f := range m.AddFields {
		if !have[f.Name] {
			next.Fields = append(next.Fields, f)
		}
	}
	next.Children = append(next.Children, active.Type.Children...)
	next.Children = append(next.Children, m.AddChildren...)
	if err := next.Validate(); err != nil {
		return VersionedType{}, err
	}
	vt := VersionedType{Version: active.Version + 1, Type: next, Description: m.Description, Applied: r.clock()}
	r.mu.Lock()
	r.versions[m.Type] = append(r.versions[m.Type], vt)
	r.mu.Unlock()
	return vt, nil
}

// Strategy selects how the backfill runs.
type Strategy int

// Backfill strategies.
const (
	// Online backfills in small batches through ordinary single-entity
	// transactions while live traffic continues (the paper's requirement of
	// continuous availability).
	Online Strategy = iota
	// StopTheWorld takes an exclusive coarse logical lock on the whole type
	// for the duration of the backfill; live writers block. The baseline of
	// experiment E12.
	StopTheWorld
)

// String returns the strategy name.
func (s Strategy) String() string {
	if s == StopTheWorld {
		return "stop-the-world"
	}
	return "online"
}

// Progress reports a running or finished backfill.
type Progress struct {
	Entities  int
	Backfills int
	Skipped   int
	Errors    int
	Elapsed   time.Duration
}

// Migrator executes backfills over one serialization unit.
type Migrator struct {
	registry *Registry
	db       *lsdb.DB
	mgr      *txn.Manager
	lm       *locks.Manager
}

// NewMigrator creates a migrator. The lock manager must be the one live
// writers use so stop-the-world migrations actually block them.
func NewMigrator(registry *Registry, db *lsdb.DB, mgr *txn.Manager, lm *locks.Manager) *Migrator {
	return &Migrator{registry: registry, db: db, mgr: mgr, lm: lm}
}

// migrationLockResource is the coarse resource a stop-the-world migration
// takes for the whole entity type.
func migrationLockResource(typeName string) string {
	return locks.CoarseResource(typeName, "schema-migration")
}

// MigrationLockResource exposes the coarse resource name so cooperating
// writers can check it (or acquire it in shared mode) before writing.
func MigrationLockResource(typeName string) string { return migrationLockResource(typeName) }

// Apply proposes the migration (registering the new schema version in both
// the registry and the LSDB) and then backfills existing entities using the
// chosen strategy. batchSize bounds how many entities are touched per
// scheduling quantum in Online mode.
func (m *Migrator) Apply(mig Migration, strategy Strategy, batchSize int) (VersionedType, Progress, error) {
	start := time.Now()
	vt, err := m.registry.Propose(mig)
	if err != nil {
		return VersionedType{}, Progress{}, err
	}
	// The LSDB validates against the registered type: switch it to the new
	// version so both old-shape and new-shape writes are accepted.
	if err := m.db.RegisterType(vt.Type); err != nil {
		return VersionedType{}, Progress{}, err
	}
	if mig.Backfill == nil {
		return vt, Progress{Elapsed: time.Since(start)}, nil
	}
	var progress Progress
	if strategy == StopTheWorld {
		owner := locks.Owner("migration:" + mig.Type)
		if err := m.lm.Acquire(owner, migrationLockResource(mig.Type), locks.Exclusive, 0, 30*time.Second); err != nil {
			return vt, progress, fmt.Errorf("migrate: could not lock type %s: %w", mig.Type, err)
		}
		defer m.lm.ReleaseAll(owner)
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	keys := m.db.KeysOfType(mig.Type)
	for i, key := range keys {
		progress.Entities++
		st, _, err := m.db.Current(key)
		if err != nil {
			progress.Errors++
			continue
		}
		ops := mig.Backfill(st)
		if len(ops) == 0 {
			progress.Skipped++
			continue
		}
		_, err = m.mgr.Run(txn.Solipsistic, nil, 0, func(t *txn.Txn) error {
			return t.Update(key, ops...)
		})
		if err != nil {
			progress.Errors++
			continue
		}
		progress.Backfills++
		// Online mode yields between batches so live traffic interleaves.
		if strategy == Online && batchSize > 0 && (i+1)%batchSize == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	progress.Elapsed = time.Since(start)
	return vt, progress, nil
}
