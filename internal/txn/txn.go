// Package txn implements the transaction models the paper contrasts:
//
//   - Solipsistic transactions (principle 2.10): each transaction acts on its
//     local view of the data, buffers operation descriptors and commits
//     unconditionally; the infrastructure resolves conflicts afterwards with
//     the same machinery it uses across replicas.
//   - Optimistic transactions: reads are validated at commit; a concurrent
//     writer forces a rollback (the "optimistic concurrency control which can
//     cause rollback" the paper mentions).
//   - Pessimistic transactions: two-phase locking over logical locks (waits,
//     timeouts, possibly deadlock-timeouts).
//   - A two-phase-commit coordinator for multi-entity, multi-unit
//     transactions, the baseline whose cost principle 2.5 argues against.
//
// Transactions target exactly one serialization unit (one lsdb.DB). A
// focused transaction additionally touches exactly one entity; the manager
// can enforce this (principle 2.5/2.6) or merely report it.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/locks"
	"repro/internal/lsdb"
	"repro/internal/queue"
)

// Mode selects the concurrency-control discipline of a transaction.
type Mode int

// Concurrency-control modes.
const (
	// Solipsistic commits without any concurrency check (principle 2.10).
	Solipsistic Mode = iota
	// Optimistic validates read versions at commit and aborts on conflict.
	Optimistic
	// Pessimistic acquires exclusive logical locks before touching entities.
	Pessimistic
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Solipsistic:
		return "solipsistic"
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Common errors.
var (
	// ErrConflict is returned by optimistic commits whose read set changed.
	ErrConflict = errors.New("txn: optimistic conflict")
	// ErrLockTimeout is returned by pessimistic transactions that could not
	// obtain a lock in time.
	ErrLockTimeout = errors.New("txn: lock timeout")
	// ErrMultiEntity is returned when a focused transaction touches more
	// than one entity (principle 2.5 violation).
	ErrMultiEntity = errors.New("txn: transaction touches multiple entities")
	// ErrDone is returned when using a transaction after Commit or Abort.
	ErrDone = errors.New("txn: already finished")
	// ErrAborted is returned by the 2PC coordinator when any participant
	// failed to prepare.
	ErrAborted = errors.New("txn: aborted")
)

// Options configure a Manager.
type Options struct {
	// Node stamps transactions with the unit/replica identity.
	Node clock.NodeID
	// EnforceSingleEntity makes Commit fail with ErrMultiEntity when a
	// transaction wrote more than one entity (SOUPS discipline, 2.6).
	EnforceSingleEntity bool
	// LockTimeout bounds pessimistic lock waits (default 2s).
	LockTimeout time.Duration
	// LockTTL bounds how long commit-duration locks may be held (default 0:
	// forever, released at commit/abort).
	LockTTL time.Duration
}

// Manager creates transactions against one serialization unit.
type Manager struct {
	opts  Options
	db    *lsdb.DB
	hlc   *clock.HLC
	locks *locks.Manager
	ids   clock.Sequence

	mu    sync.Mutex
	stats Stats
}

// Stats counts transaction outcomes.
type Stats struct {
	Commits      uint64
	Aborts       uint64
	Conflicts    uint64
	LockTimeouts uint64
}

// NewManager creates a transaction manager over db. The lock manager may be
// shared with the process engine so logical locks interoperate.
func NewManager(db *lsdb.DB, lm *locks.Manager, hlc *clock.HLC, opts Options) *Manager {
	if opts.LockTimeout <= 0 {
		opts.LockTimeout = 2 * time.Second
	}
	if lm == nil {
		lm = locks.NewManager(locks.Options{})
	}
	if hlc == nil {
		hlc = clock.NewHLC(opts.Node)
	}
	m := &Manager{opts: opts, db: db, hlc: hlc, locks: lm, ids: clock.Sequence{}}
	m.resumeIDs()
	return m
}

// resumeIDs advances the id sequence past every transaction id this node name
// already issued into the store. Commit treats a duplicate transaction id as
// an at-least-once retry and silently skips the append, so a manager opened
// over a recovered log (durable restart, promoted standby) must not recycle
// ids — a fresh write wearing an old id would be dropped as its own replay.
func (m *Manager) resumeIDs() {
	prefix := fmt.Sprintf("%s-txn-", m.opts.Node)
	var floor uint64
	for _, rec := range m.db.RecordsAfter(0) {
		n, ok := strings.CutPrefix(rec.TxnID, prefix)
		if !ok {
			continue
		}
		if v, err := strconv.ParseUint(n, 10, 64); err == nil && v > floor {
			floor = v
		}
	}
	m.ids.AdvanceTo(floor)
}

// DB returns the underlying serialization unit.
func (m *Manager) DB() *lsdb.DB { return m.db }

// Locks returns the logical lock manager.
func (m *Manager) Locks() *locks.Manager { return m.locks }

// Stats returns a copy of the outcome counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Txn is one transaction. Txns are not safe for concurrent use by multiple
// goroutines; each goroutine begins its own.
type Txn struct {
	m      *Manager
	id     string
	mode   Mode
	outbox *queue.Outbox
	done   bool

	// reads captures the head LSN of every entity read, for optimistic
	// validation.
	reads map[entity.Key]uint64
	// writes buffers the operations per entity, in first-touch order.
	writes     map[entity.Key][]entity.Op
	writeOrder []entity.Key
	// tentative marks entities whose buffered ops are a tentative promise.
	tentative map[entity.Key]bool
	// owner is the logical-lock owner for pessimistic mode.
	owner locks.Owner
}

// Begin starts a transaction in the given mode.
func (m *Manager) Begin(mode Mode) *Txn {
	id := fmt.Sprintf("%s-txn-%d", m.opts.Node, m.ids.Next())
	return &Txn{
		m:         m,
		id:        id,
		mode:      mode,
		outbox:    queue.NewOutbox(),
		reads:     map[entity.Key]uint64{},
		writes:    map[entity.Key][]entity.Op{},
		tentative: map[entity.Key]bool{},
		owner:     locks.Owner(id),
	}
}

// ID returns the transaction identifier (also used for idempotence).
func (t *Txn) ID() string { return t.id }

// Mode returns the concurrency-control mode.
func (t *Txn) Mode() Mode { return t.mode }

// Read returns the current (subjective) state of an entity, including the
// transaction's own buffered writes. Reading a non-existent entity returns an
// empty state, not an error: principle 2.2 says data entry must not be
// blocked just because referenced data has not arrived yet.
//
// A read with no buffered writes is zero-copy: the store's frozen cached
// state is returned directly, so the caller must State.Thaw before mutating
// it. With buffered writes the overlay is applied copy-on-write, so the
// returned state is already a private mutable value.
func (t *Txn) Read(key entity.Key) (*entity.State, error) {
	if t.done {
		return nil, ErrDone
	}
	if t.mode == Pessimistic {
		if err := t.lock(key); err != nil {
			return nil, err
		}
	}
	st, head, err := t.m.db.Current(key)
	if errors.Is(err, lsdb.ErrNotFound) {
		st, head = entity.NewState(key), 0
	} else if err != nil {
		return nil, err
	}
	if _, seen := t.reads[key]; !seen {
		t.reads[key] = head
	}
	// Overlay the transaction's own buffered operations (read-your-writes
	// within the transaction).
	if ops := t.writes[key]; len(ops) > 0 {
		typ, ok := t.m.db.TypeOf(key.Type)
		if !ok {
			return nil, fmt.Errorf("%w: %s", lsdb.ErrUnknownType, key.Type)
		}
		overlaid, _, err := entity.Apply(typ, st, ops, entity.Managed)
		if err != nil {
			return nil, err
		}
		return overlaid, nil
	}
	return st, nil
}

// Update buffers operations against an entity.
func (t *Txn) Update(key entity.Key, ops ...entity.Op) error {
	return t.update(key, false, ops...)
}

// UpdateTentative buffers operations whose effect is a tentative promise
// (principle 2.9); the kernel can later confirm or withdraw it.
func (t *Txn) UpdateTentative(key entity.Key, ops ...entity.Op) error {
	return t.update(key, true, ops...)
}

func (t *Txn) update(key entity.Key, tentative bool, ops ...entity.Op) error {
	if t.done {
		return ErrDone
	}
	if len(ops) == 0 {
		return nil
	}
	if t.mode == Pessimistic {
		if err := t.lock(key); err != nil {
			return err
		}
	}
	if _, seen := t.writes[key]; !seen {
		t.writeOrder = append(t.writeOrder, key)
	}
	t.writes[key] = append(t.writes[key], ops...)
	if tentative {
		t.tentative[key] = true
	}
	return nil
}

// Emit stages an event for publication if and only if the transaction
// commits (the transactional outbox of principle 2.4).
func (t *Txn) Emit(topic string, ev queue.Event) {
	ev.TxnID = t.id
	t.outbox.Stage(topic, ev)
}

// EmitDelayed stages a delayed event.
func (t *Txn) EmitDelayed(topic string, ev queue.Event, delay time.Duration) {
	ev.TxnID = t.id
	t.outbox.StageDelayed(topic, ev, delay)
}

// Entities returns the keys this transaction has written, in first-touch
// order.
func (t *Txn) Entities() []entity.Key {
	return append([]entity.Key(nil), t.writeOrder...)
}

func (t *Txn) lock(key entity.Key) error {
	res := locks.FineResource(key.Type, key.ID)
	err := t.m.locks.Acquire(t.owner, res, locks.Exclusive, t.m.opts.LockTTL, t.m.opts.LockTimeout)
	if err != nil {
		if errors.Is(err, locks.ErrTimeout) {
			t.m.mu.Lock()
			t.m.stats.LockTimeouts++
			t.m.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrLockTimeout, res)
		}
		return err
	}
	return nil
}

// CommitResult describes a successful commit.
type CommitResult struct {
	TxnID string
	Stamp clock.Timestamp
	// Records lists the LSDB records written, one per entity.
	Records []lsdb.Record
	// Warnings carries managed-mode constraint violations to be handled by
	// follow-up process steps (principle 2.2).
	Warnings []entity.Warning
	// PublishedEvents lists the message ids of events flushed to the queue.
	PublishedEvents []uint64
}

// Commit finishes the transaction: it validates (per mode), appends one
// record per written entity to the LSDB, publishes staged events to q (if q
// is non-nil) and releases locks. On failure everything is discarded.
func (t *Txn) Commit(q *queue.Queue) (CommitResult, error) {
	if t.done {
		return CommitResult{}, ErrDone
	}
	t.done = true
	defer t.release()

	if t.m.opts.EnforceSingleEntity && len(t.writeOrder) > 1 {
		t.fail()
		return CommitResult{}, fmt.Errorf("%w: %d entities", ErrMultiEntity, len(t.writeOrder))
	}
	// Optimistic validation: every entity read must still be at the LSN we
	// saw. (Solipsists skip this entirely; pessimists are protected by
	// locks.)
	if t.mode == Optimistic {
		for key, sawLSN := range t.reads {
			_, head, err := t.m.db.Current(key)
			if errors.Is(err, lsdb.ErrNotFound) {
				head = 0
			} else if err != nil {
				t.fail()
				return CommitResult{}, err
			}
			if head != sawLSN {
				t.m.mu.Lock()
				t.m.stats.Conflicts++
				t.m.stats.Aborts++
				t.m.mu.Unlock()
				t.outbox.Discard()
				return CommitResult{}, fmt.Errorf("%w: %s changed (read at %d, now %d)", ErrConflict, key, sawLSN, head)
			}
		}
	}

	stamp := t.m.hlc.Now()
	res := CommitResult{TxnID: t.id, Stamp: stamp}
	for _, key := range t.writeOrder {
		ops := t.writes[key]
		var ar lsdb.AppendResult
		var err error
		if t.tentative[key] {
			ar, err = t.m.db.AppendTentative(key, ops, stamp, t.m.opts.Node, t.id)
		} else {
			ar, err = t.m.db.Append(key, ops, stamp, t.m.opts.Node, t.id)
		}
		if err != nil {
			// A duplicate txn id means this transaction already committed
			// (at-least-once retry); treat it as success without re-appending.
			if errors.Is(err, lsdb.ErrDuplicateTxn) {
				continue
			}
			t.fail()
			return CommitResult{}, err
		}
		res.Records = append(res.Records, ar.Record)
		res.Warnings = append(res.Warnings, ar.Warnings...)
	}
	if q != nil {
		ids, err := t.outbox.Publish(q)
		if err != nil {
			// The data is committed; event publication failing is an
			// infrastructure error surfaced to the caller for retry.
			return res, fmt.Errorf("txn: committed but event publication failed: %w", err)
		}
		res.PublishedEvents = ids
	} else {
		t.outbox.Discard()
	}
	t.m.mu.Lock()
	t.m.stats.Commits++
	t.m.mu.Unlock()
	return res, nil
}

// Abort discards all buffered work and releases locks.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.outbox.Discard()
	t.fail()
	t.release()
}

func (t *Txn) fail() {
	t.m.mu.Lock()
	t.m.stats.Aborts++
	t.m.mu.Unlock()
}

func (t *Txn) release() {
	if t.mode == Pessimistic {
		t.m.locks.ReleaseAll(t.owner)
	}
}

// Run executes fn inside a transaction and commits it, retrying optimistic
// conflicts up to retries times. It is the convenience most call sites use.
func (m *Manager) Run(mode Mode, q *queue.Queue, retries int, fn func(*Txn) error) (CommitResult, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		t := m.Begin(mode)
		if err := fn(t); err != nil {
			t.Abort()
			return CommitResult{}, err
		}
		res, err := t.Commit(q)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !errors.Is(err, ErrConflict) {
			return CommitResult{}, err
		}
	}
	return CommitResult{}, lastErr
}

// --- Two-phase commit baseline -------------------------------------------

// Participant is one serialization unit taking part in a distributed
// transaction.
type Participant struct {
	Manager *Manager
	// Delay simulates the network round trip to this participant for each
	// 2PC message (prepare, commit/abort). Zero means co-located.
	Delay time.Duration
}

// DistributedWrite is one entity write within a distributed transaction.
type DistributedWrite struct {
	Participant int // index into the coordinator's participant list
	Key         entity.Key
	Ops         []entity.Op
}

// Coordinator runs two-phase commit across participants. It exists as the
// baseline the paper argues against: "when entities from two different
// organizational units are accessed in the same transaction, a distributed
// (two-phase commit) transaction is required, which impacts performance and
// availability" (principle 2.5).
type Coordinator struct {
	participants []Participant
	ids          clock.Sequence

	mu    sync.Mutex
	stats CoordinatorStats
}

// CoordinatorStats counts distributed transaction outcomes.
type CoordinatorStats struct {
	Commits  uint64
	Aborts   uint64
	Prepares uint64
}

// NewCoordinator creates a 2PC coordinator over the participants.
func NewCoordinator(participants ...Participant) *Coordinator {
	return &Coordinator{participants: participants}
}

// Stats returns a copy of the outcome counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// prepared holds one participant's prepared (but not yet committed) local
// transaction.
type prepared struct {
	part  int
	txn   *Txn
	delay time.Duration
}

// Execute runs a distributed transaction over the writes: phase one acquires
// locks and validates at every participant (prepare), phase two commits
// everywhere or aborts everywhere. Every phase pays each participant's
// simulated network delay, serially for prepare ordering determinism and to
// model a coordinator that logs between messages.
func (c *Coordinator) Execute(writes []DistributedWrite, q *queue.Queue) error {
	if len(writes) == 0 {
		return nil
	}
	id := c.ids.Next()
	_ = id
	// Group writes per participant: one local transaction each.
	perPart := map[int][]DistributedWrite{}
	var order []int
	for _, w := range writes {
		if w.Participant < 0 || w.Participant >= len(c.participants) {
			return fmt.Errorf("txn: participant %d out of range", w.Participant)
		}
		if _, ok := perPart[w.Participant]; !ok {
			order = append(order, w.Participant)
		}
		perPart[w.Participant] = append(perPart[w.Participant], w)
	}
	sort.Ints(order)

	// Phase 1: prepare — start a pessimistic local transaction at each
	// participant, buffer the writes, acquire locks.
	var preps []prepared
	abort := func() {
		for _, p := range preps {
			if p.delay > 0 {
				time.Sleep(p.delay)
			}
			p.txn.Abort()
		}
		c.mu.Lock()
		c.stats.Aborts++
		c.mu.Unlock()
	}
	for _, pi := range order {
		part := c.participants[pi]
		if part.Delay > 0 {
			time.Sleep(part.Delay)
		}
		local := part.Manager.Begin(Pessimistic)
		ok := true
		for _, w := range perPart[pi] {
			if _, err := local.Read(w.Key); err != nil {
				ok = false
				break
			}
			if err := local.Update(w.Key, w.Ops...); err != nil {
				ok = false
				break
			}
		}
		c.mu.Lock()
		c.stats.Prepares++
		c.mu.Unlock()
		if !ok {
			local.Abort()
			abort()
			return fmt.Errorf("%w: participant %d failed to prepare", ErrAborted, pi)
		}
		preps = append(preps, prepared{part: pi, txn: local, delay: part.Delay})
	}

	// Phase 2: commit everywhere.
	for _, p := range preps {
		if p.delay > 0 {
			time.Sleep(p.delay)
		}
		if _, err := p.txn.Commit(q); err != nil {
			// A commit failure after successful prepares leaves the classic
			// 2PC in-doubt window; surface it loudly.
			abort()
			return fmt.Errorf("txn: 2pc commit failed at participant %d: %w", p.part, err)
		}
	}
	c.mu.Lock()
	c.stats.Commits++
	c.mu.Unlock()
	return nil
}
