package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/queue"
)

func newUnit(t *testing.T, node clock.NodeID, opts Options) *Manager {
	t.Helper()
	db := lsdb.Open(lsdb.Options{Node: node, SnapshotEvery: 16, Validation: entity.Managed})
	types := []*entity.Type{
		{Name: "Account", Fields: []entity.Field{
			{Name: "owner", Type: entity.String},
			{Name: "balance", Type: entity.Float},
		}},
		{Name: "Order", Fields: []entity.Field{
			{Name: "status", Type: entity.String},
			{Name: "total", Type: entity.Float},
		}, Children: []entity.ChildCollection{
			{Name: "lineitems", Fields: []entity.Field{
				{Name: "product", Type: entity.String},
				{Name: "qty", Type: entity.Int},
			}},
		}},
	}
	for _, typ := range types {
		if err := db.RegisterType(typ); err != nil {
			t.Fatal(err)
		}
	}
	opts.Node = node
	return NewManager(db, nil, nil, opts)
}

func acct(id string) entity.Key { return entity.Key{Type: "Account", ID: id} }

func TestSolipsisticCommit(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	q := queue.New("u1", queue.Options{})
	tx := m.Begin(Solipsistic)
	st, err := tx.Read(acct("A"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if st.Float("balance") != 0 {
		t.Fatal("new entity should read as empty state")
	}
	if err := tx.Update(acct("A"), entity.Set("owner", "alice"), entity.Delta("balance", 100)); err != nil {
		t.Fatal(err)
	}
	tx.Emit("accounts", queue.Event{Name: "account.opened", Entity: acct("A")})
	res, err := tx.Commit(q)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if len(res.Records) != 1 || len(res.PublishedEvents) != 1 {
		t.Fatalf("result = %+v", res)
	}
	st, _, err = m.DB().Current(acct("A"))
	if err != nil || st.Float("balance") != 100 {
		t.Fatalf("committed state: %v %v", st, err)
	}
	if q.Len() != 1 {
		t.Fatalf("event not published: %d", q.Len())
	}
	if m.Stats().Commits != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	if tx.Mode() != Solipsistic || tx.ID() == "" {
		t.Fatal("metadata accessors broken")
	}
}

func TestReadYourWritesWithinTxn(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	tx := m.Begin(Solipsistic)
	tx.Update(acct("A"), entity.Delta("balance", 40))
	st, err := tx.Read(acct("A"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Float("balance") != 40 {
		t.Fatalf("own write not visible: %v", st.Float("balance"))
	}
	// But not visible outside before commit.
	if _, _, err := m.DB().Current(acct("A")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatal("uncommitted write visible outside the transaction")
	}
	tx.Abort()
	if _, _, err := m.DB().Current(acct("A")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatal("aborted write became visible")
	}
}

func TestAbortDiscardsEverything(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	q := queue.New("u1", queue.Options{})
	tx := m.Begin(Solipsistic)
	tx.Update(acct("A"), entity.Delta("balance", 10))
	tx.Emit("t", queue.Event{Name: "e"})
	tx.Abort()
	if q.Len() != 0 {
		t.Fatal("aborted transaction published events")
	}
	if m.Stats().Aborts != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// Using the transaction afterwards fails.
	if err := tx.Update(acct("A"), entity.Delta("balance", 1)); !errors.Is(err, ErrDone) {
		t.Fatalf("want ErrDone, got %v", err)
	}
	if _, err := tx.Read(acct("A")); !errors.Is(err, ErrDone) {
		t.Fatalf("want ErrDone, got %v", err)
	}
	if _, err := tx.Commit(nil); !errors.Is(err, ErrDone) {
		t.Fatalf("want ErrDone, got %v", err)
	}
	tx.Abort() // idempotent
}

func TestOptimisticConflictAborts(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	// Seed the account.
	seed := m.Begin(Solipsistic)
	seed.Update(acct("A"), entity.Set("balance", 100.0))
	if _, err := seed.Commit(nil); err != nil {
		t.Fatal(err)
	}
	// T1 reads, then T2 writes and commits, then T1 tries to commit.
	t1 := m.Begin(Optimistic)
	if _, err := t1.Read(acct("A")); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin(Optimistic)
	if _, err := t2.Read(acct("A")); err != nil {
		t.Fatal(err)
	}
	t2.Update(acct("A"), entity.Set("balance", 50.0))
	if _, err := t2.Commit(nil); err != nil {
		t.Fatalf("t2 commit: %v", err)
	}
	t1.Update(acct("A"), entity.Set("balance", 70.0))
	if _, err := t1.Commit(nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	st, _, _ := m.DB().Current(acct("A"))
	if st.Float("balance") != 50 {
		t.Fatalf("lost update or dirty write: %v", st.Float("balance"))
	}
	stats := m.Stats()
	if stats.Conflicts != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestOptimisticNoConflictOnDisjointEntities(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	t1 := m.Begin(Optimistic)
	t2 := m.Begin(Optimistic)
	t1.Read(acct("A"))
	t2.Read(acct("B"))
	t1.Update(acct("A"), entity.Delta("balance", 1))
	t2.Update(acct("B"), entity.Delta("balance", 1))
	if _, err := t1.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Commit(nil); err != nil {
		t.Fatalf("disjoint optimistic txns should both commit: %v", err)
	}
}

func TestSolipsisticNeverConflicts(t *testing.T) {
	// Two solipsistic transactions both update the same entity from the same
	// snapshot; both commit (no waits, no aborts), and because they use
	// commutative deltas the final state is correct (principle 2.10 + 2.7).
	m := newUnit(t, "u1", Options{})
	t1 := m.Begin(Solipsistic)
	t2 := m.Begin(Solipsistic)
	t1.Read(acct("A"))
	t2.Read(acct("A"))
	t1.Update(acct("A"), entity.Delta("balance", 30).Described("deposit 30"))
	t2.Update(acct("A"), entity.Delta("balance", 12).Described("deposit 12"))
	if _, err := t1.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Commit(nil); err != nil {
		t.Fatalf("solipsistic commit should never conflict: %v", err)
	}
	st, _, _ := m.DB().Current(acct("A"))
	if st.Float("balance") != 42 {
		t.Fatalf("balance = %v, want 42", st.Float("balance"))
	}
	if m.Stats().Conflicts != 0 || m.Stats().Aborts != 0 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestPessimisticBlocksSecondWriter(t *testing.T) {
	m := newUnit(t, "u1", Options{LockTimeout: 50 * time.Millisecond})
	t1 := m.Begin(Pessimistic)
	if _, err := t1.Read(acct("A")); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin(Pessimistic)
	if _, err := t2.Read(acct("A")); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	t2.Abort()
	// After t1 finishes, locks are released and a new transaction proceeds.
	t1.Update(acct("A"), entity.Delta("balance", 5))
	if _, err := t1.Commit(nil); err != nil {
		t.Fatal(err)
	}
	t3 := m.Begin(Pessimistic)
	if _, err := t3.Read(acct("A")); err != nil {
		t.Fatalf("lock not released after commit: %v", err)
	}
	t3.Abort()
	if m.Stats().LockTimeouts != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestEnforceSingleEntity(t *testing.T) {
	m := newUnit(t, "u1", Options{EnforceSingleEntity: true})
	tx := m.Begin(Solipsistic)
	tx.Update(acct("A"), entity.Delta("balance", 1))
	tx.Update(acct("B"), entity.Delta("balance", 1))
	if _, err := tx.Commit(nil); !errors.Is(err, ErrMultiEntity) {
		t.Fatalf("want ErrMultiEntity, got %v", err)
	}
	// Neither write took effect.
	if _, _, err := m.DB().Current(acct("A")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatal("partial commit leaked")
	}
	// A single-entity transaction with several ops is fine.
	ok := m.Begin(Solipsistic)
	ok.Update(acct("C"), entity.Delta("balance", 1))
	ok.Update(acct("C"), entity.Set("owner", "carol"))
	if _, err := ok.Commit(nil); err != nil {
		t.Fatalf("single-entity commit: %v", err)
	}
	if got := ok.Entities(); len(got) != 1 || got[0] != acct("C") {
		t.Fatalf("Entities = %v", got)
	}
}

func TestTentativeUpdateFlagsState(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	tx := m.Begin(Solipsistic)
	tx.UpdateTentative(acct("A"), entity.Delta("balance", -20).Described("hold for offer"))
	res, err := tx.Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	st, _, _ := m.DB().Current(acct("A"))
	if !st.Tentative {
		t.Fatal("state should be tentative")
	}
	// The promise can be withdrawn through the LSDB by txn id.
	if err := m.DB().MarkObsolete(acct("A"), res.TxnID); err != nil {
		t.Fatalf("MarkObsolete: %v", err)
	}
	st, _, _ = m.DB().Current(acct("A"))
	if st.Float("balance") != 0 {
		t.Fatalf("withdrawn promise still visible: %v", st.Float("balance"))
	}
}

func TestCommitIdempotentOnDuplicateTxnID(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	tx := m.Begin(Solipsistic)
	tx.Update(acct("A"), entity.Delta("balance", 10))
	if _, err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
	// Simulate an at-least-once retry of the same logical transaction by
	// appending directly with the same txn id: the LSDB refuses.
	_, err := m.DB().Append(acct("A"), []entity.Op{entity.Delta("balance", 10)}, clock.Timestamp{WallNanos: 1, Node: "u1"}, "u1", tx.ID())
	if !errors.Is(err, lsdb.ErrDuplicateTxn) {
		t.Fatalf("want ErrDuplicateTxn, got %v", err)
	}
	st, _, _ := m.DB().Current(acct("A"))
	if st.Float("balance") != 10 {
		t.Fatalf("duplicate applied: %v", st.Float("balance"))
	}
}

func TestRunRetriesOptimisticConflicts(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	seed := m.Begin(Solipsistic)
	seed.Update(acct("A"), entity.Set("balance", 0.0))
	seed.Commit(nil)

	// Interfering writer fires exactly once, from inside the body on the
	// first attempt, so the first commit conflicts and the retry succeeds.
	interfered := false
	_, err := m.Run(Optimistic, nil, 3, func(tx *Txn) error {
		st, err := tx.Read(acct("A"))
		if err != nil {
			return err
		}
		if !interfered {
			interfered = true
			w := m.Begin(Solipsistic)
			w.Update(acct("A"), entity.Delta("balance", 1))
			if _, err := w.Commit(nil); err != nil {
				return err
			}
		}
		return tx.Update(acct("A"), entity.Set("balance", st.Float("balance")+10))
	})
	if err != nil {
		t.Fatalf("Run with retries: %v", err)
	}
	st, _, _ := m.DB().Current(acct("A"))
	if st.Float("balance") != 11 {
		t.Fatalf("balance = %v, want 11 (1 from interferer + 10 from retried txn)", st.Float("balance"))
	}
}

func TestRunPropagatesBodyError(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	boom := errors.New("boom")
	if _, err := m.Run(Solipsistic, nil, 2, func(*Txn) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("want body error, got %v", err)
	}
	if m.Stats().Aborts != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestConcurrentSolipsisticDepositsAllLand(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, err := m.Run(Solipsistic, nil, 0, func(tx *Txn) error {
					return tx.Update(acct("shared"), entity.Delta("balance", 1))
				})
				if err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st, _, _ := m.DB().Current(acct("shared"))
	if st.Float("balance") != workers*per {
		t.Fatalf("balance = %v, want %d (deltas must not be lost)", st.Float("balance"), workers*per)
	}
}

func TestModeString(t *testing.T) {
	if Solipsistic.String() != "solipsistic" || Optimistic.String() != "optimistic" || Pessimistic.String() != "pessimistic" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestTwoPhaseCommitAcrossUnits(t *testing.T) {
	m1 := newUnit(t, "u1", Options{})
	m2 := newUnit(t, "u2", Options{})
	c := NewCoordinator(Participant{Manager: m1}, Participant{Manager: m2})
	err := c.Execute([]DistributedWrite{
		{Participant: 0, Key: acct("A"), Ops: []entity.Op{entity.Delta("balance", -50).Described("transfer out")}},
		{Participant: 1, Key: acct("B"), Ops: []entity.Op{entity.Delta("balance", 50).Described("transfer in")}},
	}, nil)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	a, _, _ := m1.DB().Current(acct("A"))
	b, _, _ := m2.DB().Current(acct("B"))
	if a.Float("balance") != -50 || b.Float("balance") != 50 {
		t.Fatalf("balances = %v / %v", a.Float("balance"), b.Float("balance"))
	}
	if c.Stats().Commits != 1 || c.Stats().Prepares != 2 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestTwoPhaseCommitAbortsWhenParticipantCannotPrepare(t *testing.T) {
	m1 := newUnit(t, "u1", Options{LockTimeout: 30 * time.Millisecond})
	m2 := newUnit(t, "u2", Options{LockTimeout: 30 * time.Millisecond})
	// A local transaction holds the lock on B at participant 2, so prepare
	// times out there and the whole distributed transaction aborts.
	blocker := m2.Begin(Pessimistic)
	if _, err := blocker.Read(acct("B")); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Participant{Manager: m1}, Participant{Manager: m2})
	err := c.Execute([]DistributedWrite{
		{Participant: 0, Key: acct("A"), Ops: []entity.Op{entity.Delta("balance", -50)}},
		{Participant: 1, Key: acct("B"), Ops: []entity.Op{entity.Delta("balance", 50)}},
	}, nil)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	blocker.Abort()
	// Neither side applied anything.
	if _, _, err := m1.DB().Current(acct("A")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatal("participant 0 applied a write despite abort")
	}
	if _, _, err := m2.DB().Current(acct("B")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatal("participant 1 applied a write despite abort")
	}
	if c.Stats().Aborts != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestTwoPhaseCommitValidation(t *testing.T) {
	m1 := newUnit(t, "u1", Options{})
	c := NewCoordinator(Participant{Manager: m1})
	if err := c.Execute(nil, nil); err != nil {
		t.Fatalf("empty distributed txn should be a no-op: %v", err)
	}
	err := c.Execute([]DistributedWrite{{Participant: 7, Key: acct("A")}}, nil)
	if err == nil {
		t.Fatal("out-of-range participant accepted")
	}
}

func TestTwoPhaseCommitDelaySlowsItDown(t *testing.T) {
	m1 := newUnit(t, "u1", Options{})
	m2 := newUnit(t, "u2", Options{})
	delay := 10 * time.Millisecond
	c := NewCoordinator(Participant{Manager: m1, Delay: delay}, Participant{Manager: m2, Delay: delay})
	start := time.Now()
	err := c.Execute([]DistributedWrite{
		{Participant: 0, Key: acct("A"), Ops: []entity.Op{entity.Delta("balance", 1)}},
		{Participant: 1, Key: acct("B"), Ops: []entity.Op{entity.Delta("balance", 1)}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 participants x 2 phases x 10ms = at least 40ms of network time,
	// which is the cost principle 2.5 says focused transactions avoid.
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("2PC finished too fast (%v) for the configured delays", elapsed)
	}
}

func TestCommitResultWarningsSurface(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	tx := m.Begin(Solipsistic)
	// Unknown field: accepted in managed mode but reported.
	tx.Update(entity.Key{Type: "Order", ID: "O1"}, entity.Set("unknown_field", "x"))
	res, err := tx.Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 {
		t.Fatalf("warnings = %v", res.Warnings)
	}
}

// newGroupCommitUnit is newUnit with group-commit append batching enabled in
// the underlying store, so committing transactions ride the batched path.
func newGroupCommitUnit(t *testing.T, node clock.NodeID, opts Options) *Manager {
	t.Helper()
	db := lsdb.Open(lsdb.Options{Node: node, SnapshotEvery: 16, Validation: entity.Managed, GroupCommit: true, MaxBatch: 8})
	typ := &entity.Type{Name: "Account", Fields: []entity.Field{
		{Name: "owner", Type: entity.String},
		{Name: "balance", Type: entity.Float},
	}}
	if err := db.RegisterType(typ); err != nil {
		t.Fatal(err)
	}
	opts.Node = node
	return NewManager(db, nil, nil, opts)
}

// TestConcurrentTransactionsRideGroupCommit runs many solipsistic
// transactions from concurrent goroutines against a group-commit store: the
// commit results, final balances, idempotence and the dense LSN space must
// all match what per-append locking would produce.
func TestConcurrentTransactionsRideGroupCommit(t *testing.T) {
	m := newGroupCommitUnit(t, "u1", Options{EnforceSingleEntity: true})
	const goroutines, perG = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := acct("shared")
				if i%2 == 0 {
					key = acct("private-" + string(rune('a'+g)))
				}
				if _, err := m.Run(Solipsistic, nil, 0, func(tx *Txn) error {
					return tx.Update(key, entity.Delta("balance", 1))
				}); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := m.Stats().Commits; got != goroutines*perG {
		t.Fatalf("commits = %d, want %d", got, goroutines*perG)
	}
	st, _, err := m.DB().Current(acct("shared"))
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	if got := st.Float("balance"); got != float64(goroutines*perG/2) {
		t.Fatalf("shared balance = %v, want %d", got, goroutines*perG/2)
	}
	records := m.DB().RecordsAfter(0)
	if len(records) != goroutines*perG {
		t.Fatalf("log has %d records, want %d", len(records), goroutines*perG)
	}
	for i, rec := range records {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("LSN %d at position %d: batched commits left a gap", rec.LSN, i)
		}
	}
}

// TestOptimisticConflictSurvivesGroupCommit: batching must not weaken
// optimistic validation — a transaction that read a head another writer moved
// still aborts with ErrConflict.
func TestOptimisticConflictSurvivesGroupCommit(t *testing.T) {
	m := newGroupCommitUnit(t, "u1", Options{})
	if _, err := m.Run(Solipsistic, nil, 0, func(tx *Txn) error {
		return tx.Update(acct("A"), entity.Delta("balance", 1))
	}); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(Optimistic)
	if _, err := tx.Read(acct("A")); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer moves the head between the read and the commit.
	if _, err := m.Run(Solipsistic, nil, 0, func(other *Txn) error {
		return other.Update(acct("A"), entity.Delta("balance", 1))
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(acct("A"), entity.Delta("balance", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("Commit err = %v, want ErrConflict", err)
	}
}

// A manager opened over a store that already holds this node's transactions
// (a recovered log after a durable restart or a standby promotion) must
// resume the id sequence past them: Commit treats a duplicate id as an
// at-least-once retry and silently skips the append, so a recycled id would
// make a fresh write vanish.
func TestManagerResumesTxnIDsFromRecoveredLog(t *testing.T) {
	m := newUnit(t, "u1", Options{})
	for i := 0; i < 3; i++ {
		tx := m.Begin(Solipsistic)
		if err := tx.Update(acct("A"), entity.Delta("balance", 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(nil); err != nil {
			t.Fatal(err)
		}
	}

	// "Restart": a new manager over the same store and node name.
	resumed := NewManager(m.DB(), nil, nil, Options{Node: "u1"})
	tx := resumed.Begin(Solipsistic)
	if got, want := tx.ID(), "u1-txn-4"; got != want {
		t.Fatalf("first txn id after restart = %s, want %s", got, want)
	}
	if err := tx.Update(acct("A"), entity.Delta("balance", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(nil); err != nil {
		t.Fatal(err)
	}
	st, _, err := resumed.DB().Current(acct("A"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Float("balance") != 4 {
		t.Fatalf("balance = %v, want 4 (post-restart write was dropped as a duplicate)", st.Float("balance"))
	}

	// Foreign txn ids (other nodes, caller-supplied) must not confuse the scan.
	if _, err := resumed.DB().Append(acct("A"), []entity.Op{entity.Delta("balance", 1)},
		clock.Timestamp{WallNanos: 99, Node: "u2"}, "u2", "u2-txn-900"); err != nil {
		t.Fatal(err)
	}
	again := NewManager(resumed.DB(), nil, nil, Options{Node: "u1"})
	if got, want := again.Begin(Solipsistic).ID(), "u1-txn-5"; got != want {
		t.Fatalf("txn id after foreign writes = %s, want %s", got, want)
	}
}
