package aggregate

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
)

func invoiceType() *entity.Type {
	return &entity.Type{
		Name: "Invoice",
		Fields: []entity.Field{
			{Name: "customer", Type: entity.String},
			{Name: "amount", Type: entity.Float},
			{Name: "status", Type: entity.String},
		},
	}
}

func newDB(t *testing.T) *lsdb.DB {
	t.Helper()
	db := lsdb.Open(lsdb.Options{Node: "u1", SnapshotEvery: 16, Validation: entity.Managed})
	if err := db.RegisterType(invoiceType()); err != nil {
		t.Fatal(err)
	}
	return db
}

func stamp(n int64) clock.Timestamp { return clock.Timestamp{WallNanos: n, Node: "u1"} }

func inv(id string) entity.Key { return entity.Key{Type: "Invoice", ID: id} }

func TestSumAggregateGlobal(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineSum("revenue", "Invoice", "amount", "")
	db.Append(inv("I1"), []entity.Op{entity.Set("amount", 100.0)}, stamp(1), "u1", "")
	db.Append(inv("I2"), []entity.Op{entity.Set("amount", 50.0)}, stamp(2), "u1", "")
	// Deferred: nothing visible until CatchUp.
	if v, _ := m.Sum("revenue", ""); v != 0 {
		t.Fatalf("deferred aggregate updated early: %v", v)
	}
	pending, _ := m.Staleness()
	if pending != 2 {
		t.Fatalf("pending = %d", pending)
	}
	if n := m.CatchUp(); n != 2 {
		t.Fatalf("CatchUp = %d", n)
	}
	if v, _ := m.Sum("revenue", ""); v != 150 {
		t.Fatalf("revenue = %v, want 150", v)
	}
	pending, _ = m.Staleness()
	if pending != 0 {
		t.Fatalf("pending after catch-up = %d", pending)
	}
	if m.Updates() != 2 {
		t.Fatalf("Updates = %d", m.Updates())
	}
}

func TestSumAggregateHandlesSetAndDelta(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineSum("revenue", "Invoice", "amount", "")
	db.Append(inv("I1"), []entity.Op{entity.Set("amount", 100.0)}, stamp(1), "u1", "")
	m.CatchUp()
	// Register overwrite: the aggregate must reflect the new value, not the
	// sum of old and new.
	db.Append(inv("I1"), []entity.Op{entity.Set("amount", 40.0)}, stamp(2), "u1", "")
	m.CatchUp()
	if v, _ := m.Sum("revenue", ""); v != 40 {
		t.Fatalf("revenue after overwrite = %v, want 40", v)
	}
	// Commutative delta adds on top.
	db.Append(inv("I1"), []entity.Op{entity.Delta("amount", 5)}, stamp(3), "u1", "")
	m.CatchUp()
	if v, _ := m.Sum("revenue", ""); v != 45 {
		t.Fatalf("revenue after delta = %v, want 45", v)
	}
}

func TestSumAggregateGroupedAndRegrouping(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineSum("by-customer", "Invoice", "amount", "customer")
	db.Append(inv("I1"), []entity.Op{entity.Set("customer", "acme"), entity.Set("amount", 100.0)}, stamp(1), "u1", "")
	db.Append(inv("I2"), []entity.Op{entity.Set("customer", "globex"), entity.Set("amount", 10.0)}, stamp(2), "u1", "")
	m.CatchUp()
	if v, _ := m.Sum("by-customer", "acme"); v != 100 {
		t.Fatalf("acme = %v", v)
	}
	if v, _ := m.Sum("by-customer", "globex"); v != 10 {
		t.Fatalf("globex = %v", v)
	}
	// Reassign I1 to globex: totals must move.
	db.Append(inv("I1"), []entity.Op{entity.Set("customer", "globex")}, stamp(3), "u1", "")
	m.CatchUp()
	if v, _ := m.Sum("by-customer", "acme"); v != 0 {
		t.Fatalf("acme after regroup = %v", v)
	}
	if v, _ := m.Sum("by-customer", "globex"); v != 110 {
		t.Fatalf("globex after regroup = %v", v)
	}
}

func TestSumAggregateDeletedEntity(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineSum("revenue", "Invoice", "amount", "")
	db.Append(inv("I1"), []entity.Op{entity.Set("amount", 100.0)}, stamp(1), "u1", "")
	m.CatchUp()
	db.Append(inv("I1"), []entity.Op{entity.Delete()}, stamp(2), "u1", "")
	m.CatchUp()
	if v, _ := m.Sum("revenue", ""); v != 0 {
		t.Fatalf("revenue after delete = %v", v)
	}
}

func TestCountAggregate(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineCount("open-invoices", "Invoice", "status")
	db.Append(inv("I1"), []entity.Op{entity.Set("status", "OPEN")}, stamp(1), "u1", "")
	db.Append(inv("I2"), []entity.Op{entity.Set("status", "OPEN")}, stamp(2), "u1", "")
	db.Append(inv("I3"), []entity.Op{entity.Set("status", "PAID")}, stamp(3), "u1", "")
	m.CatchUp()
	if n, _ := m.Count("open-invoices", "OPEN"); n != 2 {
		t.Fatalf("OPEN = %d", n)
	}
	if n, _ := m.Count("open-invoices", "PAID"); n != 1 {
		t.Fatalf("PAID = %d", n)
	}
	// Status change moves the entity between groups.
	db.Append(inv("I1"), []entity.Op{entity.Set("status", "PAID")}, stamp(4), "u1", "")
	m.CatchUp()
	if n, _ := m.Count("open-invoices", "OPEN"); n != 1 {
		t.Fatalf("OPEN after change = %d", n)
	}
	if n, _ := m.Count("open-invoices", "PAID"); n != 2 {
		t.Fatalf("PAID after change = %d", n)
	}
	// Deleting removes it from its group.
	db.Append(inv("I1"), []entity.Op{entity.Delete()}, stamp(5), "u1", "")
	m.CatchUp()
	if n, _ := m.Count("open-invoices", "PAID"); n != 1 {
		t.Fatalf("PAID after delete = %d", n)
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineIndex("by-status", "Invoice", "status")
	db.Append(inv("I1"), []entity.Op{entity.Set("status", "OPEN")}, stamp(1), "u1", "")
	db.Append(inv("I2"), []entity.Op{entity.Set("status", "OPEN")}, stamp(2), "u1", "")
	m.CatchUp()
	ids, err := m.Lookup("by-status", "OPEN")
	if err != nil || len(ids) != 2 || ids[0] != "I1" || ids[1] != "I2" {
		t.Fatalf("Lookup = %v, %v", ids, err)
	}
	// The paper/Helland point: the index is allowed to be stale. A new
	// invoice is not findable until the maintainer catches up.
	db.Append(inv("I3"), []entity.Op{entity.Set("status", "OPEN")}, stamp(3), "u1", "")
	ids, _ = m.Lookup("by-status", "OPEN")
	if len(ids) != 2 {
		t.Fatalf("index updated synchronously in deferred mode: %v", ids)
	}
	m.CatchUp()
	ids, _ = m.Lookup("by-status", "OPEN")
	if len(ids) != 3 {
		t.Fatalf("index missing entity after catch-up: %v", ids)
	}
	// Value change moves the id between index entries.
	db.Append(inv("I1"), []entity.Op{entity.Set("status", "PAID")}, stamp(4), "u1", "")
	m.CatchUp()
	open, _ := m.Lookup("by-status", "OPEN")
	paid, _ := m.Lookup("by-status", "PAID")
	if len(open) != 2 || len(paid) != 1 || paid[0] != "I1" {
		t.Fatalf("open=%v paid=%v", open, paid)
	}
	// Delete removes from the index.
	db.Append(inv("I1"), []entity.Op{entity.Delete()}, stamp(5), "u1", "")
	m.CatchUp()
	paid, _ = m.Lookup("by-status", "PAID")
	if len(paid) != 0 {
		t.Fatalf("paid after delete = %v", paid)
	}
}

func TestMaterializedView(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineView("invoice-summary", "Invoice", func(st *entity.State) entity.Fields {
		return entity.Fields{"customer": st.StringField("customer"), "amount": st.Float("amount")}
	})
	db.Append(inv("I1"), []entity.Op{entity.Set("customer", "acme"), entity.Set("amount", 10.0)}, stamp(1), "u1", "")
	m.CatchUp()
	row, found, err := m.ViewRow("invoice-summary", "I1")
	if err != nil || !found || row["customer"] != "acme" {
		t.Fatalf("ViewRow = %v %v %v", row, found, err)
	}
	if n, _ := m.ViewSize("invoice-summary"); n != 1 {
		t.Fatalf("ViewSize = %d", n)
	}
	db.Append(inv("I1"), []entity.Op{entity.Delete()}, stamp(2), "u1", "")
	m.CatchUp()
	if _, found, _ := m.ViewRow("invoice-summary", "I1"); found {
		t.Fatal("deleted entity still in view")
	}
}

func TestUnknownDefinitions(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	if _, err := m.Sum("nope", ""); !errors.Is(err, ErrUnknownDefinition) {
		t.Fatal("Sum should fail")
	}
	if _, err := m.Count("nope", ""); !errors.Is(err, ErrUnknownDefinition) {
		t.Fatal("Count should fail")
	}
	if _, err := m.Lookup("nope", 1); !errors.Is(err, ErrUnknownDefinition) {
		t.Fatal("Lookup should fail")
	}
	if _, _, err := m.ViewRow("nope", "1"); !errors.Is(err, ErrUnknownDefinition) {
		t.Fatal("ViewRow should fail")
	}
	if _, err := m.ViewSize("nope"); !errors.Is(err, ErrUnknownDefinition) {
		t.Fatal("ViewSize should fail")
	}
}

func TestSynchronousModeLabel(t *testing.T) {
	db := newDB(t)
	if NewMaintainer(db, Synchronous).Mode().String() != "synchronous" {
		t.Fatal("mode name wrong")
	}
	if NewMaintainer(db, Deferred).Mode().String() != "deferred" {
		t.Fatal("mode name wrong")
	}
}

func TestRunBackgroundLoop(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineSum("revenue", "Invoice", "amount", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Run(5*time.Millisecond, stop)
	}()
	db.Append(inv("I1"), []entity.Op{entity.Set("amount", 30.0)}, stamp(1), "u1", "")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, _ := m.Sum("revenue", ""); v == 30 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, _ := m.Sum("revenue", ""); v != 30 {
		t.Fatalf("background maintainer never caught up: %v", v)
	}
	// Records appended just before stop are flushed by the final CatchUp.
	db.Append(inv("I2"), []entity.Op{entity.Set("amount", 12.0)}, stamp(2), "u1", "")
	close(stop)
	wg.Wait()
	if v, _ := m.Sum("revenue", ""); v != 42 {
		t.Fatalf("final catch-up missed records: %v", v)
	}
}

func TestConcurrentWritersAndCatchUp(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	m.DefineSum("revenue", "Invoice", "amount", "")
	const writers, per = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.CatchUp()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := inv(fmt.Sprintf("W%d-%d", w, i))
				db.Append(key, []entity.Op{entity.Set("amount", 1.0)}, stamp(int64(w*per+i+1)), "u1", "")
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	m.CatchUp()
	if v, _ := m.Sum("revenue", ""); v != writers*per {
		t.Fatalf("revenue = %v, want %d", v, writers*per)
	}
}

func TestStalenessNeverNegative(t *testing.T) {
	db := newDB(t)
	m := NewMaintainer(db, Deferred)
	pending, lsn := m.Staleness()
	if pending != 0 || lsn != 0 {
		t.Fatalf("empty staleness = %d/%d", pending, lsn)
	}
}
