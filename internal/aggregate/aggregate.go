// Package aggregate maintains secondary data — aggregates, materialized
// views and secondary indexes — from the primary log, either synchronously
// (the conventional baseline) or deferred (principle 2.3: "I'll do it
// eventually").
//
// Deferred maintenance means secondary data "will not always be consistent
// with the primary data"; the package therefore also measures staleness (how
// far the maintainer lags the head of the log), which experiment E1 and the
// user-experience discussion in section 3.2 are about.
package aggregate

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/entity"
	"repro/internal/lsdb"
)

// Common errors.
var (
	// ErrUnknownDefinition is returned when reading an aggregate, view or
	// index that was never defined.
	ErrUnknownDefinition = errors.New("aggregate: unknown definition")
)

// Mode selects when secondary data is updated.
type Mode int

// Maintenance modes.
const (
	// Deferred updates secondary data asynchronously by tailing the log
	// (the paper's recommendation).
	Deferred Mode = iota
	// Synchronous updates secondary data inline with every primary write;
	// the hot-aggregate baseline of experiment E1.
	Synchronous
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Synchronous {
		return "synchronous"
	}
	return "deferred"
}

// sumDef defines a sum aggregate of one numeric field, grouped by another
// field (empty GroupBy aggregates globally).
type sumDef struct {
	entityType string
	field      string
	groupBy    string
}

// countDef counts live entities of a type grouped by a field.
type countDef struct {
	entityType string
	groupBy    string
}

// indexDef maps a field value to the set of entity ids having it.
type indexDef struct {
	entityType string
	field      string
}

// viewDef projects entity state into a materialized row.
type viewDef struct {
	entityType string
	project    func(*entity.State) entity.Fields
}

// Maintainer tails one serialization unit's log and keeps the defined
// secondary data up to date. All methods are safe for concurrent use.
type Maintainer struct {
	db   *lsdb.DB
	mode Mode

	mu        sync.Mutex
	processed uint64 // highest LSN folded into secondary data
	sums      map[string]sumDef
	counts    map[string]countDef
	indexes   map[string]indexDef
	views     map[string]viewDef

	sumValues   map[string]map[string]float64 // def -> group -> total
	countValues map[string]map[string]int
	indexValues map[string]map[string]map[string]bool // def -> value -> ids
	viewRows    map[string]map[string]entity.Fields   // def -> entity id -> row
	// lastSeen caches the last observed per-entity field values so that
	// register (Set) writes contribute their delta correctly.
	lastSeen map[string]map[string]float64 // sum def -> entity id -> value
	lastGrp  map[string]map[string]string  // def -> entity id -> group

	updates  uint64
	lagTotal time.Duration
	lagCount uint64
}

// NewMaintainer creates a maintainer for db in the given mode.
func NewMaintainer(db *lsdb.DB, mode Mode) *Maintainer {
	return &Maintainer{
		db:          db,
		mode:        mode,
		sums:        map[string]sumDef{},
		counts:      map[string]countDef{},
		indexes:     map[string]indexDef{},
		views:       map[string]viewDef{},
		sumValues:   map[string]map[string]float64{},
		countValues: map[string]map[string]int{},
		indexValues: map[string]map[string]map[string]bool{},
		viewRows:    map[string]map[string]entity.Fields{},
		lastSeen:    map[string]map[string]float64{},
		lastGrp:     map[string]map[string]string{},
	}
}

// Mode returns the maintenance mode.
func (m *Maintainer) Mode() Mode { return m.mode }

// DefineSum declares a sum aggregate over field of entityType, grouped by
// groupBy (empty for a single global total).
func (m *Maintainer) DefineSum(name, entityType, field, groupBy string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sums[name] = sumDef{entityType: entityType, field: field, groupBy: groupBy}
	m.sumValues[name] = map[string]float64{}
	m.lastSeen[name] = map[string]float64{}
	m.lastGrp[name] = map[string]string{}
}

// DefineCount declares a count of live entities of entityType grouped by
// groupBy (empty for a global count).
func (m *Maintainer) DefineCount(name, entityType, groupBy string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[name] = countDef{entityType: entityType, groupBy: groupBy}
	m.countValues[name] = map[string]int{}
	m.lastGrp["count:"+name] = map[string]string{}
}

// DefineIndex declares a secondary index over field of entityType.
func (m *Maintainer) DefineIndex(name, entityType, field string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.indexes[name] = indexDef{entityType: entityType, field: field}
	m.indexValues[name] = map[string]map[string]bool{}
	m.lastGrp["index:"+name] = map[string]string{}
}

// DefineView declares a materialized view projecting each entity of
// entityType through project.
func (m *Maintainer) DefineView(name, entityType string, project func(*entity.State) entity.Fields) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.views[name] = viewDef{entityType: entityType, project: project}
	m.viewRows[name] = map[string]entity.Fields{}
}

// CatchUp folds every unprocessed log record into the secondary data and
// returns how many records the maintainer caught up past. Deferred
// maintenance calls this from a background loop; synchronous maintenance
// calls it inline after each primary write.
//
// All secondary data is derived from entity state, so within one batch only
// the latest record per entity needs a state read — every earlier record of
// the same entity is already folded into that state. Records arrive in LSN
// order and the per-entity maximum includes the batch's global maximum, so
// the processed watermark still reaches the head of the batch.
func (m *Maintainer) CatchUp() int {
	m.mu.Lock()
	from := m.processed
	m.mu.Unlock()
	records := m.db.RecordsAfter(from)
	if len(records) == 0 {
		return 0
	}
	latest := make(map[entity.Key]int, len(records))
	for i, rec := range records {
		latest[rec.Key] = i
	}
	for i, rec := range records {
		if latest[rec.Key] != i {
			continue
		}
		m.applyRecord(rec)
	}
	return len(records)
}

// Run tails the log every interval until stop is closed (deferred mode's
// background worker).
func (m *Maintainer) Run(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			m.CatchUp()
			return
		case <-ticker.C:
			m.CatchUp()
		}
	}
}

// applyRecord folds one record into every matching definition.
func (m *Maintainer) applyRecord(rec lsdb.Record) {
	// Obsolete records contribute nothing; their withdrawal is reflected the
	// next time the entity's state is read (full refresh below). The read is
	// zero-copy: Current hands out the frozen cached state, and the
	// maintainer only ever reads from it.
	state, _, err := m.db.Current(rec.Key)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec.LSN <= m.processed {
		return
	}
	m.processed = rec.LSN
	m.updates++

	for name, def := range m.sums {
		if def.entityType != rec.Key.Type {
			continue
		}
		group := ""
		if def.groupBy != "" {
			group = state.StringField(def.groupBy)
		}
		cur := state.Float(def.field)
		if state.Deleted {
			cur = 0
		}
		prev := m.lastSeen[name][rec.Key.ID]
		prevGroup, hadGroup := m.lastGrp[name][rec.Key.ID]
		if hadGroup && prevGroup != group {
			// The entity moved between groups: remove it from the old one.
			m.sumValues[name][prevGroup] -= prev
			prev = 0
		}
		m.sumValues[name][group] += cur - prev
		m.lastSeen[name][rec.Key.ID] = cur
		m.lastGrp[name][rec.Key.ID] = group
	}

	for name, def := range m.counts {
		if def.entityType != rec.Key.Type {
			continue
		}
		group := ""
		if def.groupBy != "" {
			group = state.StringField(def.groupBy)
		}
		key := "count:" + name
		prevGroup, counted := m.lastGrp[key][rec.Key.ID]
		if state.Deleted {
			if counted {
				m.countValues[name][prevGroup]--
				delete(m.lastGrp[key], rec.Key.ID)
			}
			continue
		}
		if counted && prevGroup != group {
			m.countValues[name][prevGroup]--
			counted = false
		}
		if !counted {
			m.countValues[name][group]++
			m.lastGrp[key][rec.Key.ID] = group
		}
	}

	for name, def := range m.indexes {
		if def.entityType != rec.Key.Type {
			continue
		}
		key := "index:" + name
		value := fmt.Sprintf("%v", state.Fields[def.field])
		prev, had := m.lastGrp[key][rec.Key.ID]
		if had && prev != value {
			if set := m.indexValues[name][prev]; set != nil {
				delete(set, rec.Key.ID)
			}
		}
		if state.Deleted {
			if set := m.indexValues[name][value]; set != nil {
				delete(set, rec.Key.ID)
			}
			delete(m.lastGrp[key], rec.Key.ID)
			continue
		}
		if m.indexValues[name][value] == nil {
			m.indexValues[name][value] = map[string]bool{}
		}
		m.indexValues[name][value][rec.Key.ID] = true
		m.lastGrp[key][rec.Key.ID] = value
	}

	for name, def := range m.views {
		if def.entityType != rec.Key.Type {
			continue
		}
		if state.Deleted {
			delete(m.viewRows[name], rec.Key.ID)
			continue
		}
		m.viewRows[name][rec.Key.ID] = def.project(state)
	}
}

// Sum reads a sum aggregate for a group ("" for the global group).
func (m *Maintainer) Sum(name, group string) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vals, ok := m.sumValues[name]
	if !ok {
		return 0, fmt.Errorf("%w: sum %s", ErrUnknownDefinition, name)
	}
	return vals[group], nil
}

// Count reads a count aggregate for a group.
func (m *Maintainer) Count(name, group string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vals, ok := m.countValues[name]
	if !ok {
		return 0, fmt.Errorf("%w: count %s", ErrUnknownDefinition, name)
	}
	return vals[group], nil
}

// Lookup returns the sorted entity ids whose indexed field equals value.
func (m *Maintainer) Lookup(name string, value interface{}) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx, ok := m.indexValues[name]
	if !ok {
		return nil, fmt.Errorf("%w: index %s", ErrUnknownDefinition, name)
	}
	set := idx[fmt.Sprintf("%v", value)]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// ViewRow returns the materialized row for one entity (nil, false when the
// entity is not in the view).
func (m *Maintainer) ViewRow(name, entityID string) (entity.Fields, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows, ok := m.viewRows[name]
	if !ok {
		return nil, false, fmt.Errorf("%w: view %s", ErrUnknownDefinition, name)
	}
	row, found := rows[entityID]
	return row, found, nil
}

// ViewSize returns the number of rows in a view.
func (m *Maintainer) ViewSize(name string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows, ok := m.viewRows[name]
	if !ok {
		return 0, fmt.Errorf("%w: view %s", ErrUnknownDefinition, name)
	}
	return len(rows), nil
}

// Staleness reports how far the secondary data lags the primary: the number
// of unprocessed records and the LSN of the last processed record.
func (m *Maintainer) Staleness() (pendingRecords int, processedLSN uint64) {
	m.mu.Lock()
	processed := m.processed
	m.mu.Unlock()
	head := m.db.HeadLSN()
	if head < processed {
		return 0, processed
	}
	return int(head - processed), processed
}

// Updates returns how many state applications have folded records into
// secondary data. CatchUp coalesces each entity's records within a batch
// into one application, so this can be lower than the number of records
// caught up past (CatchUp's return value).
func (m *Maintainer) Updates() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.updates
}
