package queue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/entity"
)

func ev(name, key string) Event {
	return Event{Name: name, Entity: entity.Key{Type: "Order", ID: key}, TxnID: "txn-" + key}
}

func TestEnqueueDequeueAckFIFO(t *testing.T) {
	q := New("unit-1", Options{})
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue("orders", ev("order.created", fmt.Sprintf("O%d", i))); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 3; i++ {
		m, err := q.Dequeue("orders")
		if err != nil {
			t.Fatalf("Dequeue: %v", err)
		}
		want := fmt.Sprintf("O%d", i)
		if m.Event.Entity.ID != want {
			t.Fatalf("FIFO violated: got %s, want %s", m.Event.Entity.ID, want)
		}
		if err := q.Ack(m.ID); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	if _, err := q.Dequeue("orders"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if q.Acked() != 3 {
		t.Fatalf("Acked = %d", q.Acked())
	}
}

func TestDequeueTopicFilter(t *testing.T) {
	q := New("unit-1", Options{})
	q.Enqueue("orders", ev("order.created", "O1"))
	q.Enqueue("inventory", ev("inventory.reserved", "I1"))
	m, err := q.Dequeue("inventory")
	if err != nil || m.Event.Name != "inventory.reserved" {
		t.Fatalf("topic filter broken: %v %v", m, err)
	}
	q.Ack(m.ID)
	// Empty topic matches anything.
	m, err = q.Dequeue("")
	if err != nil || m.Event.Name != "order.created" {
		t.Fatalf("wildcard dequeue broken: %v %v", m, err)
	}
}

func TestVisibilityTimeoutRedelivery(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{VisibilityTimeout: 10 * time.Second, Clock: func() time.Time { return now }})
	q.Enqueue("t", ev("e", "1"))
	m1, err := q.Dequeue("t")
	if err != nil {
		t.Fatalf("Dequeue: %v", err)
	}
	// Not acked; before the timeout nothing is deliverable.
	if _, err := q.Dequeue("t"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("message visible during lease: %v", err)
	}
	if q.InFlight() != 1 {
		t.Fatalf("InFlight = %d", q.InFlight())
	}
	// After the timeout the message is redelivered (at-least-once).
	now = now.Add(11 * time.Second)
	m2, err := q.Dequeue("t")
	if err != nil {
		t.Fatalf("redelivery failed: %v", err)
	}
	if m2.ID != m1.ID {
		t.Fatalf("redelivered a different message: %d vs %d", m2.ID, m1.ID)
	}
	if m2.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", m2.Attempts)
	}
	// Acking the expired first lease fails; acking the new one succeeds.
	if err := q.Ack(m2.ID); err != nil {
		t.Fatalf("Ack after redelivery: %v", err)
	}
}

func TestAckUnknownLease(t *testing.T) {
	q := New("unit-1", Options{})
	if err := q.Ack(42); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("want ErrUnknownLease, got %v", err)
	}
	if err := q.Nack(42, time.Second); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("want ErrUnknownLease, got %v", err)
	}
}

func TestNackBackoffAndRedelivery(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{Clock: func() time.Time { return now }})
	q.Enqueue("t", ev("e", "1"))
	m, _ := q.Dequeue("t")
	if err := q.Nack(m.ID, 5*time.Second); err != nil {
		t.Fatalf("Nack: %v", err)
	}
	if _, err := q.Dequeue("t"); !errors.Is(err, ErrEmpty) {
		t.Fatal("nacked message visible before backoff")
	}
	now = now.Add(6 * time.Second)
	m2, err := q.Dequeue("t")
	if err != nil {
		t.Fatalf("Dequeue after backoff: %v", err)
	}
	if m2.Attempts != 2 {
		t.Fatalf("Attempts = %d", m2.Attempts)
	}
}

func TestDeadLetterAfterMaxAttempts(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{MaxAttempts: 3, Clock: func() time.Time { return now }})
	q.Enqueue("t", ev("poison", "1"))
	for i := 0; i < 3; i++ {
		m, err := q.Dequeue("t")
		if err != nil {
			t.Fatalf("Dequeue %d: %v", i, err)
		}
		if err := q.Nack(m.ID, 0); err != nil {
			t.Fatalf("Nack %d: %v", i, err)
		}
	}
	if _, err := q.Dequeue("t"); !errors.Is(err, ErrEmpty) {
		t.Fatal("poison message still deliverable")
	}
	dead := q.DeadLetters()
	if len(dead) != 1 || dead[0].Event.Name != "poison" {
		t.Fatalf("dead letters = %+v", dead)
	}
}

func TestDelayedEnqueue(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{Clock: func() time.Time { return now }})
	q.EnqueueDelayed("t", ev("e", "1"), 10*time.Second)
	if _, err := q.Dequeue("t"); !errors.Is(err, ErrEmpty) {
		t.Fatal("delayed message delivered early")
	}
	now = now.Add(11 * time.Second)
	if _, err := q.Dequeue("t"); err != nil {
		t.Fatalf("delayed message not delivered: %v", err)
	}
}

func TestCloseRejectsEnqueue(t *testing.T) {
	q := New("unit-1", Options{})
	q.Close()
	if _, err := q.Enqueue("t", ev("e", "1")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := q.Dequeue("t"); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestDequeueWaitDeliversWhenMessageArrives(t *testing.T) {
	q := New("unit-1", Options{})
	done := make(chan *Message, 1)
	go func() {
		m, err := q.DequeueWait("t", 2*time.Second)
		if err != nil {
			t.Errorf("DequeueWait: %v", err)
		}
		done <- m
	}()
	time.Sleep(20 * time.Millisecond)
	q.Enqueue("t", ev("late", "1"))
	select {
	case m := <-done:
		if m == nil || m.Event.Name != "late" {
			t.Fatalf("wrong message: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DequeueWait never returned")
	}
}

func TestDequeueWaitTimeout(t *testing.T) {
	q := New("unit-1", Options{})
	start := time.Now()
	_, err := q.DequeueWait("t", 30*time.Millisecond)
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout much longer than requested")
	}
}

func TestDequeueWaitClose(t *testing.T) {
	q := New("unit-1", Options{})
	errc := make(chan error, 1)
	go func() {
		_, err := q.DequeueWait("t", 5*time.Second)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DequeueWait did not observe Close")
	}
}

func TestOutboxPublishOnCommit(t *testing.T) {
	q := New("unit-1", Options{})
	o := NewOutbox()
	o.Stage("orders", ev("order.created", "O1"))
	o.StageDelayed("orders", ev("order.reminder", "O1"), time.Hour)
	if o.Len() != 2 {
		t.Fatalf("staged = %d", o.Len())
	}
	// Nothing visible before commit.
	if q.Len() != 0 {
		t.Fatal("staged events leaked before commit")
	}
	ids, err := o.Publish(q)
	if err != nil || len(ids) != 2 {
		t.Fatalf("Publish: %v ids=%v", err, ids)
	}
	if q.Len() != 2 {
		t.Fatalf("queue len = %d", q.Len())
	}
	if o.Len() != 0 {
		t.Fatal("outbox not drained by Publish")
	}
}

func TestOutboxDiscardOnRollback(t *testing.T) {
	q := New("unit-1", Options{})
	o := NewOutbox()
	o.Stage("orders", ev("order.created", "O1"))
	if n := o.Discard(); n != 1 {
		t.Fatalf("Discard = %d", n)
	}
	if q.Len() != 0 || o.Len() != 0 {
		t.Fatal("rolled-back events leaked")
	}
}

func TestOutboxPublishToClosedQueue(t *testing.T) {
	q := New("unit-1", Options{})
	q.Close()
	o := NewOutbox()
	o.Stage("t", ev("e", "1"))
	if _, err := o.Publish(q); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestDedup(t *testing.T) {
	d := NewDedup(0)
	if d.Seen("a") {
		t.Fatal("first sighting reported as seen")
	}
	if !d.Seen("a") {
		t.Fatal("second sighting not reported")
	}
	if d.Seen("b") {
		t.Fatal("unrelated id reported as seen")
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestDedupBoundedWindow(t *testing.T) {
	d := NewDedup(2)
	d.Seen("a")
	d.Seen("b")
	d.Seen("c") // evicts a
	if d.Size() != 2 {
		t.Fatalf("Size = %d, want 2", d.Size())
	}
	if d.Seen("a") {
		t.Fatal("evicted id should read as unseen")
	}
}

func TestDuplicateDeliveryWithIdempotentConsumer(t *testing.T) {
	// The queue duplicates every 2nd acked message; an idempotent consumer
	// (dedup on TxnID) still applies each event exactly once.
	q := New("unit-1", Options{DuplicateEvery: 2})
	const n = 20
	for i := 0; i < n; i++ {
		q.Enqueue("t", Event{Name: "deposit", TxnID: fmt.Sprintf("txn-%d", i)})
	}
	d := NewDedup(0)
	applied := 0
	deliveries := 0
	for {
		m, err := q.Dequeue("t")
		if errors.Is(err, ErrEmpty) {
			break
		}
		if err != nil {
			t.Fatalf("Dequeue: %v", err)
		}
		deliveries++
		if !d.Seen(m.Event.TxnID) {
			applied++
		}
		q.Ack(m.ID)
	}
	if deliveries <= n {
		t.Fatalf("expected duplicate deliveries, got %d for %d messages", deliveries, n)
	}
	if applied != n {
		t.Fatalf("idempotent consumer applied %d, want %d", applied, n)
	}
}

func TestBrokerQueuesAndDepth(t *testing.T) {
	b := NewBroker(Options{})
	q1 := b.Queue("unit-1")
	q2 := b.Queue("unit-2")
	if b.Queue("unit-1") != q1 {
		t.Fatal("broker returned a different queue instance")
	}
	q1.Enqueue("t", ev("e", "1"))
	q2.Enqueue("t", ev("e", "2"))
	q2.Enqueue("t", ev("e", "3"))
	if b.Depth() != 3 {
		t.Fatalf("Depth = %d", b.Depth())
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "unit-1" || names[1] != "unit-2" {
		t.Fatalf("Names = %v", names)
	}
	b.Close()
	if _, err := q1.Enqueue("t", ev("e", "4")); !errors.Is(err, ErrClosed) {
		t.Fatal("broker Close did not close queues")
	}
}

func TestConsumeLoop(t *testing.T) {
	q := New("unit-1", Options{})
	const n = 10
	for i := 0; i < n; i++ {
		q.Enqueue("t", Event{Name: "e", TxnID: fmt.Sprintf("%d", i)})
	}
	var handled atomic.Int64
	var failedOnce atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Consume(q, "t", stop, 0, func(m *Message) error {
			// Fail the first delivery of txn "3" to exercise the nack path.
			if m.Event.TxnID == "3" && !failedOnce.Swap(true) {
				return errors.New("transient failure")
			}
			handled.Add(1)
			return nil
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for handled.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	q.Close()
	wg.Wait()
	if handled.Load() != n {
		t.Fatalf("handled = %d, want %d", handled.Load(), n)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New("unit-1", Options{VisibilityTimeout: time.Minute})
	const producers, perProducer, consumers = 4, 200, 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue("t", Event{Name: "e", TxnID: fmt.Sprintf("%d-%d", p, i)})
			}
		}(p)
	}
	var consumed atomic.Int64
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			Consume(q, "t", stop, 0, func(*Message) error {
				consumed.Add(1)
				return nil
			})
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for consumed.Load() < producers*perProducer && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	q.Close()
	cwg.Wait()
	if consumed.Load() != producers*perProducer {
		t.Fatalf("consumed = %d, want %d", consumed.Load(), producers*perProducer)
	}
}

// Property: for any enqueue count, dequeue+ack drains exactly that many
// messages and never invents or loses one (reliable delivery).
func TestReliableDeliveryProperty(t *testing.T) {
	f := func(count uint8) bool {
		q := New("unit", Options{})
		n := int(count % 64)
		for i := 0; i < n; i++ {
			q.Enqueue("t", Event{TxnID: fmt.Sprintf("%d", i)})
		}
		seen := map[string]bool{}
		for {
			m, err := q.Dequeue("t")
			if errors.Is(err, ErrEmpty) {
				break
			}
			if err != nil {
				return false
			}
			if seen[m.Event.TxnID] {
				return false // duplicate without fault injection
			}
			seen[m.Event.TxnID] = true
			q.Ack(m.ID)
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDequeueOrderedBlocksDelayedEntityHead(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{Clock: func() time.Time { return now }})
	// Entity X's head is delayed (a retry backoff in flight); a later X
	// message and an unrelated Y message are immediately deliverable.
	q.EnqueueDelayed("t", ev("step", "X"), 50*time.Millisecond)
	q.Enqueue("t", ev("step", "X"))
	q.Enqueue("t", ev("step", "Y"))

	// Plain Dequeue would hand out the second X message here; the ordered
	// dequeue must hold X back entirely and serve Y.
	m, err := q.DequeueOrdered("t")
	if err != nil || m.Event.Entity.ID != "Y" {
		t.Fatalf("DequeueOrdered = %v, %v; want Y", m, err)
	}
	if _, err := q.DequeueOrdered("t"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("X delivered around its delayed head: %v", err)
	}
	// Once the head becomes deliverable, X's messages come out in enqueue
	// order.
	now = now.Add(time.Second)
	first, err := q.DequeueOrdered("t")
	if err != nil {
		t.Fatalf("DequeueOrdered after delay: %v", err)
	}
	second, err := q.DequeueOrdered("t")
	if err != nil {
		t.Fatalf("DequeueOrdered after delay: %v", err)
	}
	if first.ID > second.ID || first.Event.Entity.ID != "X" || second.Event.Entity.ID != "X" {
		t.Fatalf("X delivered out of order: %d then %d", first.ID, second.ID)
	}
}

func TestDequeueEntityServesOneKeyInOrder(t *testing.T) {
	q := New("unit-1", Options{})
	q.Enqueue("t", ev("step", "X"))
	q.Enqueue("t", ev("step", "Y"))
	q.Enqueue("t", ev("step", "X"))
	keyX := entity.Key{Type: "Order", ID: "X"}

	m1, err := q.DequeueEntity("t", keyX)
	if err != nil || m1.Event.Entity.ID != "X" {
		t.Fatalf("DequeueEntity = %v, %v", m1, err)
	}
	// While m1 is leased the entity is blocked (see
	// TestDequeueEntityBlockedWhileEntityLeased); settle it first, the way a
	// lane acks its head before hinting for more.
	if err := q.Ack(m1.ID); err != nil {
		t.Fatal(err)
	}
	m2, err := q.DequeueEntity("t", keyX)
	if err != nil || m2.Event.Entity.ID != "X" || m2.ID < m1.ID {
		t.Fatalf("DequeueEntity second = %v, %v", m2, err)
	}
	if err := q.Ack(m2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.DequeueEntity("t", keyX); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty for drained key, got %v", err)
	}
	// Y was never touched.
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want Y still pending", q.Len())
	}
}

func TestDequeueEntityRespectsDelayedHead(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{Clock: func() time.Time { return now }})
	q.EnqueueDelayed("t", ev("step", "X"), 50*time.Millisecond)
	q.Enqueue("t", ev("step", "X"))
	keyX := entity.Key{Type: "Order", ID: "X"}
	// The entity's earliest message is delayed: nothing may be served, not
	// even the later deliverable one.
	if _, err := q.DequeueEntity("t", keyX); !errors.Is(err, ErrEmpty) {
		t.Fatalf("DequeueEntity skipped a delayed head: %v", err)
	}
	now = now.Add(time.Second)
	m, err := q.DequeueEntity("t", keyX)
	if err != nil || m.Attempts != 1 {
		t.Fatalf("DequeueEntity after delay = %v, %v", m, err)
	}
}

func TestLeaseReclaimWithManyLeases(t *testing.T) {
	// The nextExpiry fast path must not break redelivery: lease a batch,
	// expire them all, and verify every message comes back.
	now := time.Unix(0, 0)
	q := New("unit-1", Options{VisibilityTimeout: 10 * time.Second, Clock: func() time.Time { return now }})
	const n = 64
	for i := 0; i < n; i++ {
		q.Enqueue("t", ev("step", fmt.Sprintf("K%d", i)))
	}
	for i := 0; i < n; i++ {
		if _, err := q.Dequeue("t"); err != nil {
			t.Fatalf("Dequeue: %v", err)
		}
	}
	if q.InFlight() != n {
		t.Fatalf("InFlight = %d", q.InFlight())
	}
	now = now.Add(11 * time.Second)
	seen := 0
	for {
		m, err := q.Dequeue("t")
		if errors.Is(err, ErrEmpty) {
			break
		}
		if err != nil {
			t.Fatalf("Dequeue: %v", err)
		}
		if m.Attempts != 2 {
			t.Fatalf("Attempts = %d, want 2", m.Attempts)
		}
		seen++
	}
	if seen != n {
		t.Fatalf("redelivered %d of %d", seen, n)
	}
}

func TestDequeueEntityBlockedWhileEntityLeased(t *testing.T) {
	// The lane-hinting safety rule: while any of an entity's messages is
	// leased to another consumer (e.g. the pool dispatcher between dequeue
	// and route), DequeueEntity must refuse — handing out a later message
	// would let it overtake the in-flight earlier one.
	q := New("unit-1", Options{})
	q.Enqueue("t", ev("step", "X"))
	q.Enqueue("t", ev("step", "X"))
	keyX := entity.Key{Type: "Order", ID: "X"}
	m1, err := q.Dequeue("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.DequeueEntity("t", keyX); !errors.Is(err, ErrEmpty) {
		t.Fatalf("DequeueEntity served around a leased earlier message: %v", err)
	}
	if err := q.Ack(m1.ID); err != nil {
		t.Fatal(err)
	}
	m2, err := q.DequeueEntity("t", keyX)
	if err != nil || m2.ID <= m1.ID {
		t.Fatalf("DequeueEntity after settle = %v, %v", m2, err)
	}
}

func TestMaxDepthShedsFreshEnqueuesTyped(t *testing.T) {
	q := New("unit-1", Options{MaxDepth: 2})
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue("t", ev("e", fmt.Sprintf("%d", i))); err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
	}
	if _, err := q.Enqueue("t", ev("e", "over")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("enqueue past high-water mark: err = %v, want ErrOverloaded", err)
	}
	if q.Shed() != 1 {
		t.Fatalf("Shed = %d, want 1", q.Shed())
	}
	// Draining makes room: the shed is backpressure, not a closed door.
	m, err := q.Dequeue("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Ack(m.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("t", ev("e", "retry")); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

// Redeliveries — nacks and lease expiries — are exempt from the high-water
// mark: admission control sheds only work the queue never accepted, so
// accepted per-entity work is never dropped or reordered by overload.
func TestRedeliveryExemptFromMaxDepth(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{MaxDepth: 1, VisibilityTimeout: 10 * time.Second, Clock: func() time.Time { return now }})
	if _, err := q.Enqueue("t", ev("e", "1")); err != nil {
		t.Fatal(err)
	}
	m, err := q.Dequeue("t")
	if err != nil {
		t.Fatal(err)
	}
	// The queue is at capacity again with a second accepted message.
	if _, err := q.Enqueue("t", ev("e", "2")); err != nil {
		t.Fatal(err)
	}
	// Nack of the leased message re-enters past the mark without shedding.
	if err := q.Nack(m.ID, 0); err != nil {
		t.Fatalf("nack into a full queue: %v", err)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (redelivery admitted)", q.Len())
	}
	// A fresh enqueue is shed.
	if _, err := q.Enqueue("t", ev("e", "3")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fresh enqueue: err = %v, want ErrOverloaded", err)
	}
	// Lease-expiry requeue is exempt too.
	m2, err := q.Dequeue("t")
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(11 * time.Second)
	m3, err := q.Dequeue("t")
	if err != nil {
		t.Fatalf("expired lease did not redeliver into the full queue: %v", err)
	}
	_ = m2
	_ = m3
}

// A message whose deadline passed while queued is dropped at dequeue — work
// nobody is waiting for anymore is not executed.
func TestDeadlineExpiredDroppedAtDequeue(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{Clock: func() time.Time { return now }})
	stale := ev("e", "stale")
	stale.Deadline = now.Add(5 * time.Second)
	if _, err := q.Enqueue("t", stale); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("t", ev("e", "fresh")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(6 * time.Second)
	m, err := q.Dequeue("t")
	if err != nil {
		t.Fatal(err)
	}
	if m.Event.Entity.ID != "fresh" {
		t.Fatalf("dequeued %s, want the un-deadlined message", m.Event.Entity.ID)
	}
	if q.DeadlineDropped() != 1 {
		t.Fatalf("DeadlineDropped = %d, want 1", q.DeadlineDropped())
	}
	// The drop is terminal: not redelivered, not dead-lettered.
	if len(q.DeadLetters()) != 0 {
		t.Fatalf("deadline drop went to the dead letter queue: %v", q.DeadLetters())
	}
	if _, err := q.Dequeue("t"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("stale message still deliverable: %v", err)
	}
}

// ExtendLease pushes a held message's visibility deadline out, so a lane
// owner working through a deep backlog keeps its claim.
func TestExtendLeaseRenewsVisibility(t *testing.T) {
	now := time.Unix(0, 0)
	q := New("unit-1", Options{VisibilityTimeout: 10 * time.Second, Clock: func() time.Time { return now }})
	if _, err := q.Enqueue("t", ev("e", "1")); err != nil {
		t.Fatal(err)
	}
	m, err := q.Dequeue("t")
	if err != nil {
		t.Fatal(err)
	}
	// Renew at 8s: the lease now runs to 18s.
	now = now.Add(8 * time.Second)
	if err := q.ExtendLease(m.ID); err != nil {
		t.Fatalf("ExtendLease: %v", err)
	}
	// 16s — past the original lease, inside the renewed one.
	now = now.Add(8 * time.Second)
	if _, err := q.Dequeue("t"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("renewed lease expired early: %v", err)
	}
	// 19s — past the renewed lease: redelivered.
	now = now.Add(3 * time.Second)
	m2, err := q.Dequeue("t")
	if err != nil || m2.ID != m.ID {
		t.Fatalf("redelivery after renewed lease expired: %v %v", m2, err)
	}
	if err := q.ExtendLease(999); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("ExtendLease on unknown lease: err = %v, want ErrUnknownLease", err)
	}
}
