// Package queue implements the eventing substrate of principles 2.4 and 2.6:
// process steps are connected by events carried on reliable or transactional
// queues. Delivery is at-least-once; consumers achieve effective
// exactly-once by being idempotent (the paper cites Helland's
// at-least-once-plus-idempotence recipe). Enqueue and dequeue are always
// local operations — never distributed transactions — even when the logical
// destination is a remote serialization unit (principle 2.6).
//
// Message IDs are assigned at enqueue, so ID order is enqueue order. Three
// dequeue disciplines serve the process engine's scheduling model:
//
//   - Dequeue / DequeueWait: plain FIFO over deliverable messages. A message
//     delayed by retry backoff or EnqueueDelayed is skipped, so later
//     messages — including later messages for the same entity — may be
//     delivered first.
//   - DequeueOrdered / DequeueWaitOrdered: per-entity enqueue order. When an
//     entity's earliest pending message is not yet deliverable, the entity's
//     later messages are held back too (head-of-line blocking per entity,
//     never across entities). This is the intake discipline of the process
//     engine's work-stealing pool: it guarantees an entity's steps reach
//     their serial lane in enqueue order even across backoff redeliveries.
//   - DequeueEntity: the earliest deliverable message for exactly one entity
//     key. A lane owner uses it to keep pulling a hot entity's work directly
//     ("lane hinting") without going through the shared intake.
package queue

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
)

// Common errors.
var (
	// ErrEmpty is returned by Dequeue when no message is deliverable.
	ErrEmpty = errors.New("queue: empty")
	// ErrUnknownLease is returned by Ack/Nack for an unknown or expired lease.
	ErrUnknownLease = errors.New("queue: unknown lease")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("queue: closed")
	// ErrOverloaded is returned by Enqueue when the queue is past its
	// MaxDepth high-water mark: admission control sheds new work at the
	// door instead of queueing without bound. Only fresh enqueues shed —
	// redeliveries of already-accepted messages always re-enter, so
	// admission control never reorders or drops accepted per-entity work.
	ErrOverloaded = errors.New("queue: overloaded, enqueue shed")
)

// Event is the business-level payload of a message: something that happened
// to an entity, described (per principle 2.8) in terms of the operation
// rather than only its consequence.
type Event struct {
	// Name identifies the event kind, e.g. "order.created" or
	// "inventory.reserved".
	Name string
	// Entity is the key of the entity the event concerns.
	Entity entity.Key
	// TxnID identifies the transaction that emitted the event; consumers use
	// it for idempotence.
	TxnID string
	// Data carries event-specific attributes.
	Data map[string]interface{}
	// Stamp is the HLC timestamp of the emitting transaction.
	Stamp clock.Timestamp
	// Deadline, when non-zero, is the latest time executing this event is
	// still useful (it propagates from the submitting surface — an HTTP
	// request's patience — through the kernel into the queue and lanes).
	// Work past its deadline is dropped, not executed: the queue discards
	// it at dequeue time and the process engine re-checks before running a
	// step. Events emitted by a step inherit the parent's deadline.
	Deadline time.Time
}

// Message is one queued delivery of an event.
type Message struct {
	ID       uint64
	Topic    string
	Event    Event
	Attempts int
	// NotBefore delays delivery until the given time (used for retry backoff
	// and scheduled process steps).
	NotBefore time.Time
	Enqueued  time.Time
}

// Options configure a Queue.
type Options struct {
	// VisibilityTimeout is how long a dequeued message stays invisible before
	// it is redelivered if not acknowledged. Zero uses 30s.
	VisibilityTimeout time.Duration
	// MaxAttempts moves a message to the dead-letter list after this many
	// failed deliveries. Zero uses 10.
	MaxAttempts int
	// Clock supplies time; tests and the simulator inject a fake source.
	Clock func() time.Time
	// DuplicateEvery, when positive, redelivers every Nth acknowledged
	// message once more. It models an unreliable transport with duplicate
	// delivery so tests can demonstrate that idempotent consumers cope
	// (principle 2.4).
	DuplicateEvery int
	// MaxDepth is the admission-control high-water mark: an Enqueue that
	// would grow the pending list past it is shed with ErrOverloaded.
	// Redeliveries (Nack, visibility expiry) are exempt — accepted work is
	// never dropped by backpressure, so per-entity order is untouched.
	// Zero disables shedding (unbounded intake, the historical behaviour).
	MaxDepth int
}

// Queue is a reliable FIFO topic queue with at-least-once delivery,
// visibility timeouts, retry backoff and a dead-letter list. All methods are
// safe for concurrent use.
type Queue struct {
	opts Options
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	seq     clock.Sequence
	ready   []*Message // pending, ascending by ID (= enqueue order)
	leased  map[uint64]*lease
	dead    []*Message
	acked   uint64
	closed  bool
	dupTick int
	// nextExpiry is the earliest lease deadline (zero when unknown): the
	// reclaim scan is skipped until it passes, so dequeues stay O(ready
	// prefix) even with thousands of messages leased into process lanes.
	nextExpiry time.Time
	// leasedByKey counts in-flight leases per entity. DequeueEntity refuses
	// to serve an entity with a lease outstanding: the leased message may be
	// an earlier-enqueued one still in a consumer's hands (e.g. dequeued by
	// the pool dispatcher but not yet routed), and handing out a later one
	// would reorder the entity's steps.
	leasedByKey map[entity.Key]int
	// shed counts enqueues refused by the MaxDepth high-water mark;
	// deadlineDropped counts pending messages discarded because their event
	// deadline passed before delivery.
	shed            uint64
	deadlineDropped uint64
}

type lease struct {
	msg      *Message
	deadline time.Time
}

// New creates a queue with the given name (typically the topic or the
// destination serialization unit).
func New(name string, opts Options) *Queue {
	if opts.VisibilityTimeout <= 0 {
		opts.VisibilityTimeout = 30 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 10
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	q := &Queue{opts: opts, name: name, leased: map[uint64]*lease{}, leasedByKey: map[entity.Key]int{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// VisibilityTimeout returns the queue's lease duration; consumers that hold
// messages for long stretches size their renewal cadence from it.
func (q *Queue) VisibilityTimeout() time.Duration { return q.opts.VisibilityTimeout }

// Enqueue adds an event for delivery and returns its message id. Enqueue is
// always a local, non-distributed operation.
func (q *Queue) Enqueue(topic string, ev Event) (uint64, error) {
	return q.EnqueueDelayed(topic, ev, 0)
}

// EnqueueDelayed adds an event that becomes deliverable only after delay.
func (q *Queue) EnqueueDelayed(topic string, ev Event, delay time.Duration) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	if q.opts.MaxDepth > 0 && len(q.ready) >= q.opts.MaxDepth {
		q.shed++
		return 0, fmt.Errorf("%w: %s at depth %d", ErrOverloaded, q.name, len(q.ready))
	}
	now := q.opts.Clock()
	m := &Message{
		ID:        q.seq.Next(),
		Topic:     topic,
		Event:     ev,
		NotBefore: now.Add(delay),
		Enqueued:  now,
	}
	q.ready = append(q.ready, m)
	q.cond.Broadcast()
	return m.ID, nil
}

// Dequeue returns the next deliverable message for the topic (any topic when
// topic is empty) and leases it for the visibility timeout. The caller must
// Ack or Nack it. Returns ErrEmpty when nothing is deliverable right now.
// Delayed messages are skipped, so Dequeue alone does not preserve
// per-entity order across backoffs; see DequeueOrdered.
func (q *Queue) Dequeue(topic string) (*Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dequeueLocked(topic, false)
}

// DequeueOrdered is Dequeue with per-entity head-of-line blocking: a message
// is withheld while an earlier-enqueued message for the same entity is
// pending but not yet deliverable (retry backoff, EnqueueDelayed). Other
// entities are unaffected — one entity backing off never stalls another.
// This is the discipline that keeps an entity's steps flowing to the process
// engine in enqueue order.
func (q *Queue) DequeueOrdered(topic string) (*Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dequeueLocked(topic, true)
}

// dequeueLocked scans the pending list — kept in ID (enqueue) order — for
// the first deliverable message of the topic and leases it. With ordered
// set, entities whose earliest pending message is still delayed are skipped
// entirely so their later messages cannot overtake it.
func (q *Queue) dequeueLocked(topic string, ordered bool) (*Message, error) {
	if q.closed {
		return nil, ErrClosed
	}
	now := q.opts.Clock()
	q.reclaimExpiredLocked(now)
	q.dropExpiredLocked(now)
	var blocked map[entity.Key]bool
	for i, m := range q.ready {
		if topic != "" && m.Topic != topic {
			continue
		}
		if m.NotBefore.After(now) {
			if ordered {
				if blocked == nil {
					blocked = map[entity.Key]bool{}
				}
				blocked[m.Event.Entity] = true
			}
			continue
		}
		if ordered && blocked[m.Event.Entity] {
			continue
		}
		return q.leaseLocked(i, now), nil
	}
	return nil, ErrEmpty
}

// DequeueEntity returns the earliest pending message for exactly key on the
// topic. When that message exists but is not deliverable yet (retry backoff,
// delayed enqueue), or when any of the entity's messages is currently
// leased to another consumer — possibly an earlier-enqueued one not yet
// visible here — it returns ErrEmpty rather than skipping ahead: the
// entity's order is never reordered around its own head.
func (q *Queue) DequeueEntity(topic string, key entity.Key) (*Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	now := q.opts.Clock()
	q.reclaimExpiredLocked(now)
	q.dropExpiredLocked(now)
	if q.leasedByKey[key] > 0 {
		return nil, ErrEmpty
	}
	for i, m := range q.ready {
		if topic != "" && m.Topic != topic {
			continue
		}
		if m.Event.Entity != key {
			continue
		}
		if m.NotBefore.After(now) {
			return nil, ErrEmpty
		}
		return q.leaseLocked(i, now), nil
	}
	return nil, ErrEmpty
}

// leaseLocked removes ready[i] from the pending list and leases it.
func (q *Queue) leaseLocked(i int, now time.Time) *Message {
	m := q.ready[i]
	q.ready = append(q.ready[:i], q.ready[i+1:]...)
	m.Attempts++
	deadline := now.Add(q.opts.VisibilityTimeout)
	if _, exists := q.leased[m.ID]; !exists {
		q.leasedByKey[m.Event.Entity]++
	}
	q.leased[m.ID] = &lease{msg: m, deadline: deadline}
	if q.nextExpiry.IsZero() || deadline.Before(q.nextExpiry) {
		q.nextExpiry = deadline
	}
	cp := *m
	return &cp
}

// dropExpiredLocked discards pending messages whose event deadline has
// passed: the submitter has stopped waiting, so executing the step would be
// work nobody observes. The drop is terminal — no dead-letter, no
// redelivery — and only ever removes whole messages from the pending list,
// so the per-entity order of the work that remains is untouched.
func (q *Queue) dropExpiredLocked(now time.Time) {
	kept := q.ready[:0]
	for _, m := range q.ready {
		if !m.Event.Deadline.IsZero() && now.After(m.Event.Deadline) {
			q.deadlineDropped++
			continue
		}
		kept = append(kept, m)
	}
	q.ready = kept
}

// unleaseLocked drops the per-entity lease count for a settled lease.
func (q *Queue) unleaseLocked(m *Message) {
	if n := q.leasedByKey[m.Event.Entity]; n <= 1 {
		delete(q.leasedByKey, m.Event.Entity)
	} else {
		q.leasedByKey[m.Event.Entity] = n - 1
	}
}

// DequeueWait blocks until a message is available for the topic, the timeout
// elapses (returning ErrEmpty), or the queue is closed.
func (q *Queue) DequeueWait(topic string, timeout time.Duration) (*Message, error) {
	return q.dequeueWait(topic, timeout, false)
}

// DequeueWaitOrdered is DequeueWait with DequeueOrdered's per-entity
// head-of-line blocking. It is the blocking intake of the process engine's
// dispatcher.
func (q *Queue) DequeueWaitOrdered(topic string, timeout time.Duration) (*Message, error) {
	return q.dequeueWait(topic, timeout, true)
}

func (q *Queue) dequeueWait(topic string, timeout time.Duration, ordered bool) (*Message, error) {
	deadline := time.Now().Add(timeout)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		m, err := q.dequeueLocked(topic, ordered)
		if err == nil || errors.Is(err, ErrClosed) {
			return m, err
		}
		if time.Now().After(deadline) {
			return nil, ErrEmpty
		}
		// Wake periodically: delayed messages and visibility expiries become
		// deliverable by time passing, not by a Broadcast.
		waker := time.AfterFunc(5*time.Millisecond, func() { q.cond.Broadcast() })
		q.cond.Wait()
		waker.Stop()
	}
}

// reclaimExpiredLocked returns leased messages whose visibility timeout has
// passed to the ready list (at-least-once redelivery). The scan is skipped
// while the earliest lease deadline is still in the future, so dequeues do
// not pay O(leased) when a large backlog sits in process lanes.
func (q *Queue) reclaimExpiredLocked(now time.Time) {
	if len(q.leased) == 0 || (!q.nextExpiry.IsZero() && now.Before(q.nextExpiry)) {
		return
	}
	next := time.Time{}
	for id, l := range q.leased {
		if now.After(l.deadline) {
			delete(q.leased, id)
			q.unleaseLocked(l.msg)
			q.requeueLocked(l.msg)
			continue
		}
		if next.IsZero() || l.deadline.Before(next) {
			next = l.deadline
		}
	}
	q.nextExpiry = next
}

func (q *Queue) requeueLocked(m *Message) {
	if m.Attempts >= q.opts.MaxAttempts {
		q.dead = append(q.dead, m)
		return
	}
	q.ready = append(q.ready, m)
	sort.SliceStable(q.ready, func(i, j int) bool { return q.ready[i].ID < q.ready[j].ID })
	q.cond.Broadcast()
}

// Ack acknowledges a leased message, removing it permanently (except when the
// configured duplicate-delivery fault injection re-enqueues it once).
func (q *Queue) Ack(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leased[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	delete(q.leased, id)
	q.unleaseLocked(l.msg)
	q.acked++
	if q.opts.DuplicateEvery > 0 {
		q.dupTick++
		if q.dupTick%q.opts.DuplicateEvery == 0 {
			// Simulated duplicate delivery of an already-processed message.
			// Re-sort: the duplicate carries its original ID and the pending
			// list must stay in ID order for the ordered dequeues.
			dup := *l.msg
			q.ready = append(q.ready, &dup)
			sort.SliceStable(q.ready, func(i, j int) bool { return q.ready[i].ID < q.ready[j].ID })
			q.cond.Broadcast()
		}
	}
	return nil
}

// ExtendLease renews the visibility lease of a dequeued message: its
// redelivery deadline moves to a fresh VisibilityTimeout from now. Lane
// owners renew the leases of the messages they hold, so a backlog that
// takes longer than the visibility timeout to drain is neither reclaimed
// for redelivery (which would thrash — the lane still holds the message)
// nor pushed attempt by attempt toward a spurious dead-lettering.
func (q *Queue) ExtendLease(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leased[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	l.deadline = q.opts.Clock().Add(q.opts.VisibilityTimeout)
	return nil
}

// Nack returns a leased message to the queue after the given backoff. After
// MaxAttempts the message is dead-lettered instead.
func (q *Queue) Nack(id uint64, backoff time.Duration) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leased[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLease, id)
	}
	delete(q.leased, id)
	q.unleaseLocked(l.msg)
	l.msg.NotBefore = q.opts.Clock().Add(backoff)
	q.requeueLocked(l.msg)
	return nil
}

// Len returns the number of deliverable or delayed messages (excluding leased
// and dead-lettered ones).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ready)
}

// InFlight returns the number of currently leased messages.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leased)
}

// DeadLetters returns a copy of the dead-letter list.
func (q *Queue) DeadLetters() []Message {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Message, len(q.dead))
	for i, m := range q.dead {
		out[i] = *m
	}
	return out
}

// Acked returns the number of acknowledged deliveries.
func (q *Queue) Acked() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.acked
}

// Shed returns the number of enqueues refused by the MaxDepth high-water
// mark (admission control).
func (q *Queue) Shed() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shed
}

// DeadlineDropped returns the number of pending messages discarded because
// their event deadline passed before delivery.
func (q *Queue) DeadlineDropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.deadlineDropped
}

// Close shuts the queue; blocked DequeueWait calls return ErrClosed.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Outbox is the transactional half of the eventing model: events staged
// during a transaction are published to the queue only if the transaction
// commits, and discarded if it rolls back. This is how "a committed
// transaction may enqueue events that result in additional process steps"
// (principle 2.4) without a distributed commit.
type Outbox struct {
	mu     sync.Mutex
	staged []staged
}

type staged struct {
	topic string
	ev    Event
	delay time.Duration
}

// NewOutbox returns an empty outbox.
func NewOutbox() *Outbox { return &Outbox{} }

// Stage records an event to publish if the owning transaction commits.
func (o *Outbox) Stage(topic string, ev Event) { o.StageDelayed(topic, ev, 0) }

// StageDelayed records a delayed event.
func (o *Outbox) StageDelayed(topic string, ev Event, delay time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.staged = append(o.staged, staged{topic: topic, ev: ev, delay: delay})
}

// Len returns the number of staged events.
func (o *Outbox) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.staged)
}

// Publish flushes all staged events to the queue (transaction committed) and
// returns the assigned message ids.
func (o *Outbox) Publish(q *Queue) ([]uint64, error) {
	o.mu.Lock()
	staged := o.staged
	o.staged = nil
	o.mu.Unlock()
	ids := make([]uint64, 0, len(staged))
	for _, s := range staged {
		id, err := q.EnqueueDelayed(s.topic, s.ev, s.delay)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Discard drops all staged events (transaction rolled back) and returns how
// many were dropped.
func (o *Outbox) Discard() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := len(o.staged)
	o.staged = nil
	return n
}

// Dedup tracks processed identities so at-least-once consumers can make
// their handling idempotent: Seen returns true the second time an id is
// presented. The zero value is not usable; construct with NewDedup.
type Dedup struct {
	mu   sync.Mutex
	seen map[string]bool
	// order retains insertion order so the window can be bounded.
	order []string
	limit int
}

// NewDedup creates a dedup window retaining at most limit ids (0 means
// unbounded).
func NewDedup(limit int) *Dedup {
	return &Dedup{seen: map[string]bool{}, limit: limit}
}

// Seen records id and reports whether it had been seen before.
func (d *Dedup) Seen(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[id] {
		return true
	}
	d.seen[id] = true
	d.order = append(d.order, id)
	if d.limit > 0 && len(d.order) > d.limit {
		evict := d.order[0]
		d.order = d.order[1:]
		delete(d.seen, evict)
	}
	return false
}

// Size returns the number of ids currently tracked.
func (d *Dedup) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}

// Broker routes events to named queues (one queue per destination
// serialization unit or per topic family). It keeps enqueue local: the
// sender writes to its broker, and a shipping goroutine (the replication or
// process infrastructure) moves messages between brokers asynchronously.
type Broker struct {
	opts Options

	mu     sync.RWMutex
	queues map[string]*Queue
}

// NewBroker creates an empty broker whose queues share opts.
func NewBroker(opts Options) *Broker {
	return &Broker{opts: opts, queues: map[string]*Queue{}}
}

// Queue returns the named queue, creating it on first use.
func (b *Broker) Queue(name string) *Queue {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	if !ok {
		q = New(name, b.opts)
		b.queues[name] = q
	}
	return q
}

// Names returns the names of all queues, sorted.
func (b *Broker) Names() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.queues))
	for n := range b.queues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Depth returns the total number of pending messages across all queues.
func (b *Broker) Depth() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	total := 0
	for _, q := range b.queues {
		total += q.Len()
	}
	return total
}

// Close closes every queue.
func (b *Broker) Close() {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, q := range b.queues {
		q.Close()
	}
}

// Consume runs a handler loop on one queue: it dequeues messages for topic,
// invokes handler, acks on nil error and nacks with the given backoff
// otherwise. It returns when the queue is closed or stop is closed. Handlers
// are expected to be idempotent; Consume pairs naturally with Dedup.
func Consume(q *Queue, topic string, stop <-chan struct{}, backoff time.Duration, handler func(*Message) error) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		m, err := q.DequeueWait(topic, 50*time.Millisecond)
		if errors.Is(err, ErrClosed) {
			return
		}
		if errors.Is(err, ErrEmpty) {
			continue
		}
		if err != nil {
			return
		}
		if herr := handler(m); herr != nil {
			_ = q.Nack(m.ID, backoff)
			continue
		}
		_ = q.Ack(m.ID)
	}
}
