// Package clock provides the logical time primitives used throughout the
// kernel: Lamport clocks, hybrid logical clocks (HLC), version vectors and
// dotted version vectors.
//
// The paper's principles 2.7 ("I remember it well") and 2.10 ("Solipsists get
// things done quickly") require that every write be recorded as a new,
// causally ordered version, and that conflicts between subjective replicas be
// detectable after the fact. Logical clocks provide the ordering; version
// vectors provide the concurrency (conflict) detection.
package clock

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NodeID identifies a participant (replica, serialization unit or client)
// that issues events.
type NodeID string

// Ordering is the result of comparing two logical timestamps or vectors.
type Ordering int

// Possible results of a causality comparison.
const (
	// Before means the receiver causally precedes the argument.
	Before Ordering = iota - 1
	// Equal means the two timestamps are identical.
	Equal
	// After means the receiver causally follows the argument.
	After
	// Concurrent means neither dominates the other; the events conflict.
	Concurrent
)

// String returns a human-readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case Equal:
		return "equal"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Lamport is a classic Lamport scalar clock. The zero value is ready to use.
// All methods are safe for concurrent use.
type Lamport struct {
	mu  sync.Mutex
	val uint64
}

// Now returns the current clock value without advancing it.
func (l *Lamport) Now() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.val
}

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.val++
	return l.val
}

// Observe merges a remote timestamp into the clock (receive rule) and returns
// the new local value.
func (l *Lamport) Observe(remote uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if remote > l.val {
		l.val = remote
	}
	l.val++
	return l.val
}

// HLC is a hybrid logical clock combining physical time with a logical
// counter, so timestamps are close to wall-clock time but still respect
// causality. The zero value is not usable; construct with NewHLC.
type HLC struct {
	mu      sync.Mutex
	node    NodeID
	wall    int64 // last observed physical time, nanoseconds
	logical uint32
	nowFn   func() time.Time
}

// Timestamp is a single HLC reading. Timestamps are totally ordered by
// (WallNanos, Logical, Node).
type Timestamp struct {
	WallNanos int64
	Logical   uint32
	Node      NodeID
}

// Compare orders two timestamps. It returns Before, Equal or After (never
// Concurrent, since HLC timestamps are totally ordered).
func (t Timestamp) Compare(o Timestamp) Ordering {
	switch {
	case t.WallNanos < o.WallNanos:
		return Before
	case t.WallNanos > o.WallNanos:
		return After
	case t.Logical < o.Logical:
		return Before
	case t.Logical > o.Logical:
		return After
	case t.Node < o.Node:
		return Before
	case t.Node > o.Node:
		return After
	default:
		return Equal
	}
}

// IsZero reports whether the timestamp is the zero value.
func (t Timestamp) IsZero() bool {
	return t.WallNanos == 0 && t.Logical == 0 && t.Node == ""
}

// String renders the timestamp in a compact sortable form.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d@%s", t.WallNanos, t.Logical, t.Node)
}

// ParseTimestamp parses the output of Timestamp.String.
func ParseTimestamp(s string) (Timestamp, error) {
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return Timestamp{}, fmt.Errorf("clock: malformed timestamp %q", s)
	}
	node := s[at+1:]
	parts := strings.SplitN(s[:at], ".", 2)
	if len(parts) != 2 {
		return Timestamp{}, fmt.Errorf("clock: malformed timestamp %q", s)
	}
	wall, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Timestamp{}, fmt.Errorf("clock: malformed wall part in %q: %w", s, err)
	}
	logical, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return Timestamp{}, fmt.Errorf("clock: malformed logical part in %q: %w", s, err)
	}
	return Timestamp{WallNanos: wall, Logical: uint32(logical), Node: NodeID(node)}, nil
}

// NewHLC returns a hybrid logical clock for the given node using the real
// wall clock.
func NewHLC(node NodeID) *HLC {
	return NewHLCWithSource(node, time.Now)
}

// NewHLCWithSource returns an HLC that reads physical time from nowFn. Tests
// and the deterministic network simulator supply a fake source.
func NewHLCWithSource(node NodeID, nowFn func() time.Time) *HLC {
	if nowFn == nil {
		nowFn = time.Now
	}
	return &HLC{node: node, nowFn: nowFn}
}

// Node returns the node identity stamped onto timestamps.
func (h *HLC) Node() NodeID { return h.node }

// Now issues a timestamp for a local event (send rule).
func (h *HLC) Now() Timestamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	phys := h.nowFn().UnixNano()
	if phys > h.wall {
		h.wall = phys
		h.logical = 0
	} else {
		h.logical++
	}
	return Timestamp{WallNanos: h.wall, Logical: h.logical, Node: h.node}
}

// Observe merges a remote timestamp (receive rule) and returns the local
// timestamp assigned to the receive event.
func (h *HLC) Observe(remote Timestamp) Timestamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	phys := h.nowFn().UnixNano()
	switch {
	case phys > h.wall && phys > remote.WallNanos:
		h.wall = phys
		h.logical = 0
	case remote.WallNanos > h.wall:
		h.wall = remote.WallNanos
		h.logical = remote.Logical + 1
	case h.wall > remote.WallNanos:
		h.logical++
	default: // equal walls
		if remote.Logical > h.logical {
			h.logical = remote.Logical
		}
		h.logical++
	}
	return Timestamp{WallNanos: h.wall, Logical: h.logical, Node: h.node}
}

// VersionVector maps node identities to the count of events observed from
// each node. It is the standard mechanism for detecting concurrent updates
// between subjective replicas (principle 2.10).
type VersionVector map[NodeID]uint64

// NewVersionVector returns an empty version vector.
func NewVersionVector() VersionVector { return VersionVector{} }

// Clone returns a deep copy.
func (v VersionVector) Clone() VersionVector {
	out := make(VersionVector, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Get returns the counter for node (zero if absent).
func (v VersionVector) Get(node NodeID) uint64 { return v[node] }

// Increment bumps the counter for node and returns the new value.
func (v VersionVector) Increment(node NodeID) uint64 {
	v[node]++
	return v[node]
}

// Merge folds other into v, taking the element-wise maximum.
func (v VersionVector) Merge(other VersionVector) {
	for k, n := range other {
		if n > v[k] {
			v[k] = n
		}
	}
}

// Merged returns a new vector that is the element-wise maximum of v and other.
func (v VersionVector) Merged(other VersionVector) VersionVector {
	out := v.Clone()
	out.Merge(other)
	return out
}

// Compare determines the causal relation between v and other.
func (v VersionVector) Compare(other VersionVector) Ordering {
	less, greater := false, false
	for k, n := range v {
		o := other[k]
		if n < o {
			less = true
		} else if n > o {
			greater = true
		}
	}
	for k, o := range other {
		if _, ok := v[k]; !ok && o > 0 {
			less = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Dominates reports whether v has observed everything other has (v >= other).
func (v VersionVector) Dominates(other VersionVector) bool {
	c := v.Compare(other)
	return c == After || c == Equal
}

// Concurrent reports whether neither vector dominates the other.
func (v VersionVector) Concurrent(other VersionVector) bool {
	return v.Compare(other) == Concurrent
}

// String renders the vector deterministically (sorted by node).
func (v VersionVector) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[NodeID(k)])
	}
	b.WriteByte('}')
	return b.String()
}

// Dot identifies one specific event: the n-th event issued by a node.
type Dot struct {
	Node    NodeID
	Counter uint64
}

// String renders the dot as node:counter.
func (d Dot) String() string { return fmt.Sprintf("%s:%d", d.Node, d.Counter) }

// DottedVersionVector pairs a causal context (the version vector of events
// known when the write happened) with the dot of the write itself. DVVs allow
// a replica to distinguish "newer value" from "concurrent sibling" precisely,
// which is what the paper's infrastructure-based conflict resolution needs.
type DottedVersionVector struct {
	Dot     Dot
	Context VersionVector
}

// NewDVV stamps a new write by node against the causal context ctx.
// The context is cloned; callers may keep mutating their vector.
func NewDVV(node NodeID, ctx VersionVector) DottedVersionVector {
	c := ctx.Clone()
	counter := c.Increment(node)
	return DottedVersionVector{Dot: Dot{Node: node, Counter: counter}, Context: c}
}

// Descends reports whether d causally includes other's dot (i.e. d was made
// with knowledge of other, so other is obsolete).
func (d DottedVersionVector) Descends(other DottedVersionVector) bool {
	return d.Context.Get(other.Dot.Node) >= other.Dot.Counter
}

// Compare returns the causal relation between two dotted versions.
func (d DottedVersionVector) Compare(other DottedVersionVector) Ordering {
	dDesc := d.Descends(other)
	oDesc := other.Descends(d)
	switch {
	case d.Dot == other.Dot:
		return Equal
	case dDesc && !oDesc:
		return After
	case oDesc && !dDesc:
		return Before
	case dDesc && oDesc:
		return Equal
	default:
		return Concurrent
	}
}

// Join returns the version vector containing both the context and the dot,
// i.e. everything this version has seen including itself.
func (d DottedVersionVector) Join() VersionVector {
	out := d.Context.Clone()
	if out[d.Dot.Node] < d.Dot.Counter {
		out[d.Dot.Node] = d.Dot.Counter
	}
	return out
}

// Sequence hands out strictly monotonically increasing identifiers. It backs
// log sequence numbers in the LSDB and message ids in the queues. The zero
// value is ready to use and safe for concurrent use.
type Sequence struct {
	mu   sync.Mutex
	next uint64
}

// Next returns the next identifier, starting from 1.
func (s *Sequence) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	return s.next
}

// Reserve allocates n consecutive identifiers in one acquisition and returns
// the first of the run; the caller owns first..first+n-1. The group-commit
// leader in the LSDB uses it to stamp a whole batch of appends with one
// contiguous LSN run instead of taking the sequence lock once per record.
// Reserving zero identifiers returns the next unissued value without
// consuming it.
func (s *Sequence) Reserve(n int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	first := s.next + 1
	if n > 0 {
		s.next += uint64(n)
	}
	return first
}

// Rollback un-issues a reservation of n identifiers starting at first. The
// LSDB calls it when a log-first append fails after reserving LSNs: putting
// the run back keeps the durable log dense (no LSN gaps), which standby
// contiguous watermarks and the group-commit contract depend on. It succeeds
// only when first..first+n-1 is exactly the tip of the sequence — callers
// must serialise allocation and rollback under their own lock so no later
// reservation can interleave.
func (s *Sequence) Rollback(first uint64, n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || first == 0 || first+uint64(n)-1 != s.next {
		return false
	}
	s.next = first - 1
	return true
}

// Peek returns the most recently issued identifier (0 if none yet).
func (s *Sequence) Peek() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// AdvanceTo moves the sequence forward so the next issued id is strictly
// greater than floor. It never moves the sequence backwards.
func (s *Sequence) AdvanceTo(floor uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if floor > s.next {
		s.next = floor
	}
}
