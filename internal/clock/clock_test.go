package clock

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLamportTickMonotonic(t *testing.T) {
	var l Lamport
	prev := l.Now()
	for i := 0; i < 100; i++ {
		v := l.Tick()
		if v <= prev {
			t.Fatalf("tick %d: got %d, want > %d", i, v, prev)
		}
		prev = v
	}
}

func TestLamportObserve(t *testing.T) {
	var l Lamport
	l.Tick() // 1
	got := l.Observe(10)
	if got != 11 {
		t.Fatalf("Observe(10) = %d, want 11", got)
	}
	got = l.Observe(5)
	if got != 12 {
		t.Fatalf("Observe(5) after 11 = %d, want 12", got)
	}
}

func TestLamportConcurrentTicksUnique(t *testing.T) {
	var l Lamport
	const goroutines, per = 8, 200
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, l.Tick())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				if seen[v] {
					t.Errorf("duplicate lamport value %d", v)
				}
				seen[v] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*per {
		t.Fatalf("got %d unique values, want %d", len(seen), goroutines*per)
	}
}

func TestHLCMonotonicWithFrozenPhysicalClock(t *testing.T) {
	fixed := time.Unix(1000, 0)
	h := NewHLCWithSource("n1", func() time.Time { return fixed })
	prev := h.Now()
	for i := 0; i < 50; i++ {
		ts := h.Now()
		if ts.Compare(prev) != After {
			t.Fatalf("timestamp %v not after %v", ts, prev)
		}
		prev = ts
	}
}

func TestHLCObserveAdvancesPastRemote(t *testing.T) {
	fixed := time.Unix(1000, 0)
	h := NewHLCWithSource("n1", func() time.Time { return fixed })
	remote := Timestamp{WallNanos: fixed.UnixNano() + 500, Logical: 7, Node: "n2"}
	local := h.Observe(remote)
	if local.Compare(remote) != After {
		t.Fatalf("Observe result %v should be after remote %v", local, remote)
	}
	// A subsequent local event must still be after the receive event.
	next := h.Now()
	if next.Compare(local) != After {
		t.Fatalf("Now %v should be after observed %v", next, local)
	}
}

func TestHLCObserveBackwardPhysicalTime(t *testing.T) {
	now := time.Unix(2000, 0)
	h := NewHLCWithSource("n1", func() time.Time { return now })
	first := h.Now()
	// Physical clock goes backwards.
	now = time.Unix(1500, 0)
	second := h.Now()
	if second.Compare(first) != After {
		t.Fatalf("second %v should be after first %v despite clock regression", second, first)
	}
}

func TestTimestampCompareTotalOrder(t *testing.T) {
	a := Timestamp{WallNanos: 1, Logical: 0, Node: "a"}
	b := Timestamp{WallNanos: 1, Logical: 1, Node: "a"}
	c := Timestamp{WallNanos: 2, Logical: 0, Node: "a"}
	d := Timestamp{WallNanos: 1, Logical: 0, Node: "b"}
	cases := []struct {
		x, y Timestamp
		want Ordering
	}{
		{a, a, Equal},
		{a, b, Before},
		{b, a, After},
		{a, c, Before},
		{c, b, After},
		{a, d, Before},
		{d, a, After},
	}
	for _, tc := range cases {
		if got := tc.x.Compare(tc.y); got != tc.want {
			t.Errorf("Compare(%v,%v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestTimestampStringRoundTrip(t *testing.T) {
	ts := Timestamp{WallNanos: 123456789, Logical: 42, Node: "replica-7"}
	parsed, err := ParseTimestamp(ts.String())
	if err != nil {
		t.Fatalf("ParseTimestamp: %v", err)
	}
	if parsed != ts {
		t.Fatalf("round trip mismatch: %v != %v", parsed, ts)
	}
}

func TestParseTimestampErrors(t *testing.T) {
	for _, s := range []string{"", "nodot@n", "1.x@n", "x.1@n", "1.2"} {
		if _, err := ParseTimestamp(s); err == nil {
			t.Errorf("ParseTimestamp(%q) should fail", s)
		}
	}
}

func TestVersionVectorCompare(t *testing.T) {
	a := VersionVector{"x": 1, "y": 2}
	b := VersionVector{"x": 1, "y": 2}
	if a.Compare(b) != Equal {
		t.Fatalf("equal vectors not Equal")
	}
	b.Increment("x")
	if a.Compare(b) != Before {
		t.Fatalf("a should be Before b, got %v", a.Compare(b))
	}
	if b.Compare(a) != After {
		t.Fatalf("b should be After a, got %v", b.Compare(a))
	}
	a.Increment("y")
	if a.Compare(b) != Concurrent {
		t.Fatalf("a and b should be Concurrent, got %v", a.Compare(b))
	}
	if !a.Concurrent(b) {
		t.Fatal("Concurrent helper disagrees with Compare")
	}
}

func TestVersionVectorCompareMissingEntries(t *testing.T) {
	a := VersionVector{"x": 1}
	b := VersionVector{"y": 1}
	if a.Compare(b) != Concurrent {
		t.Fatalf("disjoint vectors should be concurrent, got %v", a.Compare(b))
	}
	empty := VersionVector{}
	if empty.Compare(a) != Before {
		t.Fatalf("empty vs non-empty should be Before, got %v", empty.Compare(a))
	}
	if a.Compare(empty) != After {
		t.Fatalf("non-empty vs empty should be After, got %v", a.Compare(empty))
	}
}

func TestVersionVectorMerge(t *testing.T) {
	a := VersionVector{"x": 3, "y": 1}
	b := VersionVector{"y": 5, "z": 2}
	m := a.Merged(b)
	want := VersionVector{"x": 3, "y": 5, "z": 2}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("merged[%s] = %d, want %d", k, m[k], v)
		}
	}
	if !m.Dominates(a) || !m.Dominates(b) {
		t.Fatal("merge must dominate both inputs")
	}
}

func TestVersionVectorCloneIsIndependent(t *testing.T) {
	a := VersionVector{"x": 1}
	b := a.Clone()
	b.Increment("x")
	if a["x"] != 1 {
		t.Fatalf("clone mutation leaked into original: %v", a)
	}
}

func TestVersionVectorStringDeterministic(t *testing.T) {
	v := VersionVector{"b": 2, "a": 1, "c": 3}
	want := "{a:1,b:2,c:3}"
	if got := v.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// Property: merge is commutative, associative and idempotent (a join
// semilattice), which is what eventual convergence relies on.
func TestVersionVectorMergeLatticeProperties(t *testing.T) {
	gen := func(seed int64) VersionVector {
		v := VersionVector{}
		s := uint64(seed)
		for i := 0; i < 4; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			node := NodeID(fmt.Sprintf("n%d", i))
			v[node] = s % 8
		}
		return v
	}
	commutative := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		return a.Merged(b).Compare(b.Merged(a)) == Equal
	}
	associative := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		return a.Merged(b).Merged(c).Compare(a.Merged(b.Merged(c))) == Equal
	}
	idempotent := func(s1 int64) bool {
		a := gen(s1)
		return a.Merged(a).Compare(a) == Equal
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("merge not commutative: %v", err)
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Errorf("merge not associative: %v", err)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("merge not idempotent: %v", err)
	}
}

func TestDVVNewWriteDescendsContext(t *testing.T) {
	ctx := VersionVector{"a": 2, "b": 1}
	d := NewDVV("a", ctx)
	if d.Dot.Counter != 3 {
		t.Fatalf("dot counter = %d, want 3", d.Dot.Counter)
	}
	older := DottedVersionVector{Dot: Dot{Node: "a", Counter: 2}, Context: VersionVector{"a": 1}}
	if !d.Descends(older) {
		t.Fatal("new write should descend older write it observed")
	}
	if d.Compare(older) != After {
		t.Fatalf("Compare = %v, want After", d.Compare(older))
	}
}

func TestDVVConcurrentSiblings(t *testing.T) {
	base := VersionVector{"a": 1}
	w1 := NewDVV("b", base) // b writes having seen a:1
	w2 := NewDVV("c", base) // c writes having seen a:1
	if w1.Compare(w2) != Concurrent {
		t.Fatalf("independent writes should be Concurrent, got %v", w1.Compare(w2))
	}
	// A third write that has seen both should dominate both.
	merged := w1.Join().Merged(w2.Join())
	w3 := NewDVV("a", merged)
	if w3.Compare(w1) != After || w3.Compare(w2) != After {
		t.Fatal("write with merged context should dominate both siblings")
	}
}

func TestDVVEqualSameDot(t *testing.T) {
	d := NewDVV("a", VersionVector{})
	if d.Compare(d) != Equal {
		t.Fatalf("same dot should compare Equal, got %v", d.Compare(d))
	}
}

func TestDVVJoinIncludesDot(t *testing.T) {
	d := NewDVV("a", VersionVector{"b": 4})
	j := d.Join()
	if j["a"] != d.Dot.Counter {
		t.Fatalf("join missing own dot: %v", j)
	}
	if j["b"] != 4 {
		t.Fatalf("join lost context: %v", j)
	}
}

func TestSequenceMonotonicAndConcurrent(t *testing.T) {
	var s Sequence
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	results := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				results[g] = append(results[g], s.Next())
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, r := range results {
		for i := 1; i < len(r); i++ {
			if r[i] <= r[i-1] {
				t.Fatalf("per-goroutine sequence not increasing: %d then %d", r[i-1], r[i])
			}
		}
		for _, v := range r {
			if seen[v] {
				t.Fatalf("duplicate id %d", v)
			}
			seen[v] = true
		}
	}
	if s.Peek() != goroutines*per {
		t.Fatalf("Peek = %d, want %d", s.Peek(), goroutines*per)
	}
}

func TestSequenceReserve(t *testing.T) {
	var s Sequence
	if first := s.Reserve(3); first != 1 {
		t.Fatalf("Reserve(3) = %d, want 1", first)
	}
	if got := s.Next(); got != 4 {
		t.Fatalf("Next after Reserve(3) = %d, want 4", got)
	}
	if first := s.Reserve(0); first != 5 {
		t.Fatalf("Reserve(0) = %d, want 5 (peek at next unissued)", first)
	}
	if got := s.Next(); got != 5 {
		t.Fatalf("Next after Reserve(0) = %d, want 5 (nothing consumed)", got)
	}
}

// TestSequenceReserveConcurrent checks that interleaved Reserve and Next
// calls hand out disjoint runs covering a dense range — the property the
// group-commit leader relies on for gap-free LSN assignment.
func TestSequenceReserveConcurrent(t *testing.T) {
	var s Sequence
	const goroutines, per, run = 8, 200, 5
	var wg sync.WaitGroup
	results := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					first := s.Reserve(run)
					for j := 0; j < run; j++ {
						results[g] = append(results[g], first+uint64(j))
					}
				} else {
					results[g] = append(results[g], s.Next())
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	total := 0
	for _, r := range results {
		for _, id := range r {
			if seen[id] {
				t.Fatalf("id %d issued twice", id)
			}
			seen[id] = true
			total++
		}
	}
	for id := uint64(1); id <= uint64(total); id++ {
		if !seen[id] {
			t.Fatalf("id %d never issued: range not dense", id)
		}
	}
	if got := s.Peek(); got != uint64(total) {
		t.Fatalf("Peek = %d, want %d", got, total)
	}
}

func TestSequenceAdvanceTo(t *testing.T) {
	var s Sequence
	s.AdvanceTo(100)
	if got := s.Next(); got != 101 {
		t.Fatalf("Next after AdvanceTo(100) = %d, want 101", got)
	}
	s.AdvanceTo(50) // must not go backwards
	if got := s.Next(); got != 102 {
		t.Fatalf("Next after backwards AdvanceTo = %d, want 102", got)
	}
}

func TestOrderingString(t *testing.T) {
	cases := map[Ordering]string{Before: "before", Equal: "equal", After: "after", Concurrent: "concurrent"}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if Ordering(99).String() == "" {
		t.Error("unknown ordering should still render")
	}
}
