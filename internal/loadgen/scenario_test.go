package loadgen

import (
	"strings"
	"testing"
)

func TestScenariosParse(t *testing.T) {
	all, err := Scenarios("crm,banking,inventory,bookstore", 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("got %d scenarios", len(all))
	}
	if _, err := Scenarios("warehouse", 10, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Scenarios("", 10, 1); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}

// Scenario streams must be pure functions of (seed, index): two instances
// with the same seed produce identical requests, which is what makes a run
// replayable and lets concurrent workers share nothing.
func TestScenariosDeterministic(t *testing.T) {
	a, _ := Scenarios("crm,banking,inventory,bookstore", 1<<20, 99)
	b, _ := Scenarios("crm,banking,inventory,bookstore", 1<<20, 99)
	for s := range a {
		for i := uint64(0); i < 2000; i++ {
			ra, rb := a[s].Request(i), b[s].Request(i)
			if ra != rb {
				t.Fatalf("%s request %d differs between identical instances", a[s].Name(), i)
			}
		}
	}
}

func TestScenarioRequestsWellFormed(t *testing.T) {
	all, _ := Scenarios("crm,banking,inventory,bookstore", 1<<20, 5)
	for _, sc := range all {
		var submits, reads, queries int
		for i := uint64(0); i < 5000; i++ {
			r := sc.Request(i)
			if r.Scenario != sc.Name() {
				t.Fatalf("%s labelled request %q", sc.Name(), r.Scenario)
			}
			switch r.Class {
			case Submit:
				submits++
				if r.Method != "POST" || r.Body == "" {
					t.Fatalf("%s submit %d: method %s body %q", sc.Name(), i, r.Method, r.Body)
				}
				if !strings.HasPrefix(r.Path, "/entities/") {
					t.Fatalf("%s submit path %q", sc.Name(), r.Path)
				}
			case Read:
				reads++
				if r.Method != "GET" || r.Body != "" || !strings.HasPrefix(r.Path, "/entities/") {
					t.Fatalf("%s read %d malformed: %+v", sc.Name(), i, r)
				}
			case Query:
				queries++
				if r.Method != "GET" || !strings.HasPrefix(r.Path, "/history/") {
					t.Fatalf("%s query %d malformed: %+v", sc.Name(), i, r)
				}
			}
		}
		if submits == 0 || reads == 0 || queries == 0 {
			t.Fatalf("%s mix degenerate: %d/%d/%d", sc.Name(), submits, reads, queries)
		}
		if submits < reads {
			t.Fatalf("%s is write-heavy by design but got %d submits vs %d reads", sc.Name(), submits, reads)
		}
	}
}

// Reads must target indexes at or below their own, so they land on keys an
// earlier submit plausibly created.
func TestReadIndexStaysBehind(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		r := i * 2654435761
		if j := readIndex(r, i); j > i {
			t.Fatalf("readIndex(%d) = %d, ahead of writer", i, j)
		}
	}
}

func TestClassForRatios(t *testing.T) {
	var submit, read, query int
	for r := uint64(0); r < 100; r++ {
		switch classFor(r, 70, 25) {
		case Submit:
			submit++
		case Read:
			read++
		case Query:
			query++
		}
	}
	if submit != 70 || read != 25 || query != 5 {
		t.Fatalf("classFor split %d/%d/%d, want 70/25/5", submit, read, query)
	}
}
