package loadgen

import (
	"math/rand"
	"testing"
	"time"
)

// Every value must land in a bucket whose upper bound is >= the value and
// within the advertised ~1.6% relative error.
func TestHistBucketErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 100000; n++ {
		v := rng.Int63n(int64(10 * time.Minute))
		i := histIndex(v)
		upper := int64(histUpper(i))
		if upper < v {
			t.Fatalf("value %d landed in bucket %d with upper %d < value", v, i, upper)
		}
		if v >= histSubCount {
			if float64(upper-v) > float64(v)/float64(histSubCount)+1 {
				t.Fatalf("value %d bucket upper %d: relative error too large", v, upper)
			}
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	// 1..1000 microseconds, exact percentile positions known.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Min(); got != time.Microsecond {
		t.Fatalf("min = %v", got)
	}
	if got := h.Max(); got != time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want {
			t.Fatalf("q%.3f = %v, below true value %v", c.q, got, c.want)
		}
		if float64(got-c.want) > float64(c.want)*0.02 {
			t.Fatalf("q%.3f = %v, more than 2%% above true value %v", c.q, got, c.want)
		}
	}
	if got, want := h.Mean(), 500500*time.Nanosecond; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistQuantileNeverExceedsMax(t *testing.T) {
	h := NewHist()
	h.Record(3 * time.Second)
	for _, q := range []float64{0.5, 0.99, 0.999, 1.0} {
		if got := h.Quantile(q); got != 3*time.Second {
			t.Fatalf("q%v = %v with a single 3s sample", q, got)
		}
	}
}

func TestHistNegativeClampsToZero(t *testing.T) {
	h := NewHist()
	h.Record(-time.Second)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample not clamped: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Record(time.Millisecond)
	b.Record(10 * time.Millisecond)
	b.Record(100 * time.Microsecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 100*time.Microsecond || a.Max() != 10*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestHistConcurrentRecord(t *testing.T) {
	h := NewHist()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if h.Count() != 80000 {
		t.Fatalf("count = %d after concurrent records", h.Count())
	}
}
