package loadgen

import (
	"testing"
	"time"
)

func TestUniformScheduleSpacing(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewSchedule(Uniform, 1000, start, 1) // 1ms gaps
	prev := s.Next()
	if !prev.Equal(start) {
		t.Fatalf("first arrival %v, want start", prev)
	}
	for i := 0; i < 100; i++ {
		next := s.Next()
		if got := next.Sub(prev); got != time.Millisecond {
			t.Fatalf("gap %d = %v, want 1ms", i, got)
		}
		prev = next
	}
}

func TestPoissonScheduleMeanAndDeterminism(t *testing.T) {
	start := time.Unix(0, 0)
	const rate, n = 1000.0, 20000
	a := NewSchedule(Poisson, rate, start, 7)
	b := NewSchedule(Poisson, rate, start, 7)
	var last time.Time
	for i := 0; i < n; i++ {
		ta, tb := a.Next(), b.Next()
		if !ta.Equal(tb) {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, ta, tb)
		}
		if ta.Before(last) {
			t.Fatalf("arrival %d went backwards", i)
		}
		last = ta
	}
	// Mean inter-arrival over n samples should be close to 1/rate.
	mean := last.Sub(start) / time.Duration(n-1)
	want := time.Duration(float64(time.Second) / rate)
	if mean < want*9/10 || mean > want*11/10 {
		t.Fatalf("poisson mean gap %v, want within 10%% of %v", mean, want)
	}
}

func TestPoissonSeedsDiffer(t *testing.T) {
	start := time.Unix(0, 0)
	a := NewSchedule(Poisson, 100, start, 1)
	b := NewSchedule(Poisson, 100, start, 2)
	a.Next()
	b.Next()
	if a.Next().Equal(b.Next()) {
		t.Fatal("different seeds produced identical second arrival")
	}
}

// The schedule must never consult the wall clock: a stalled consumer sees
// intended times fall further and further behind real time rather than the
// schedule sliding forward (that slide is coordinated omission).
func TestScheduleIgnoresWallClock(t *testing.T) {
	start := time.Now().Add(-time.Hour) // an hour of backlog
	s := NewSchedule(Uniform, 10, start, 1)
	first := s.Next()
	if !first.Equal(start) {
		t.Fatalf("schedule shifted its start: %v", first)
	}
	time.Sleep(5 * time.Millisecond)
	second := s.Next()
	if got := second.Sub(first); got != 100*time.Millisecond {
		t.Fatalf("gap changed to %v after consumer stall", got)
	}
}

func TestParseArrival(t *testing.T) {
	if a, err := ParseArrival("poisson"); err != nil || a != Poisson {
		t.Fatalf("ParseArrival(poisson) = %v, %v", a, err)
	}
	if a, err := ParseArrival("Uniform"); err != nil || a != Uniform {
		t.Fatalf("ParseArrival(Uniform) = %v, %v", a, err)
	}
	if _, err := ParseArrival("bursty"); err == nil {
		t.Fatal("ParseArrival(bursty) did not error")
	}
}
