package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/netsim"
)

// ProbeScenario names the scoreboard row the acked-write probes land in.
const ProbeScenario = "probe"

// ProbeEntityPath is the soupsd path of the dedicated check entity the
// convergence audit increments. One entity, deltas of exactly +1: after the
// run, its balance bounds how many acked writes actually survived.
const ProbeEntityPath = "/entities/Account/slo-check"

// Fault is a fault window scheduled around one phase of a run: Begin fires
// before the phase's first arrival, End after its last in-flight request
// drains. Implementations inject client-side network faults
// (TransportFault), flip server-side storage faults, or kill the process
// under test.
type Fault interface {
	Begin() error
	End() error
}

// Phase is one segment of a soak run: offered load at a fixed rate for a
// fixed duration, optionally under a fault window.
type Phase struct {
	Name     string
	Duration time.Duration
	Rate     float64 // arrivals per second
	Fault    Fault
}

// Options configures a Runner.
type Options struct {
	// BaseURL is the soupsd endpoint, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests. Wrap its Transport in a FaultTransport to
	// schedule client-side network faults. Defaults to http.DefaultClient.
	Client *http.Client
	// Scenarios is the workload mix; arrivals round-robin across it.
	Scenarios []Scenario
	// Arrival selects the inter-arrival process (Uniform or Poisson).
	Arrival Arrival
	// Seed fixes the arrival gap sequence (scenario streams carry their own
	// seeds, set when the scenarios were built).
	Seed int64
	// MaxOutstanding bounds in-flight requests. When the system stalls and
	// the bound fills, the pacer blocks — and because latency is charged
	// from intended send times, that queueing is charged to the requests,
	// not hidden. Defaults to 512.
	MaxOutstanding int
	// Timeout bounds each request. Defaults to 5s.
	Timeout time.Duration
	// CheckEvery replaces every Nth arrival with a +1 delta on the check
	// entity (ProbeEntityPath) for the lost-acked-writes audit. 0 disables.
	CheckEvery uint64
}

// Runner paces an open-loop run through its phases.
type Runner struct {
	opts Options
	sem  chan struct{}

	// Acked-write audit counters, global across phases.
	probeAcked         atomic.Uint64
	probeIndeterminate atomic.Uint64
	probeFailed        atomic.Uint64
}

// NewRunner validates options and builds a runner.
func NewRunner(opts Options) (*Runner, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	if len(opts.Scenarios) == 0 {
		return nil, errors.New("loadgen: at least one scenario required")
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.MaxOutstanding <= 0 {
		opts.MaxOutstanding = 512
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	return &Runner{opts: opts, sem: make(chan struct{}, opts.MaxOutstanding)}, nil
}

// bucketKey indexes a scoreboard cell.
type bucketKey struct {
	scenario string
	class    Class
}

// bucket accumulates one (scenario, class) cell of a phase. Latency is
// recorded only for served requests (2xx, and 404 on reads — a served miss is
// still a served read); sheds and errors are counted, not averaged into the
// service percentiles.
type bucket struct {
	hist     *Hist
	ok       atomic.Uint64
	shed     atomic.Uint64
	notFound atomic.Uint64
	errs     atomic.Uint64
}

// PhaseResult is the scoreboard of one completed phase.
type PhaseResult struct {
	Name    string
	Rate    float64
	Arrival Arrival
	// Offered is the number of scheduled arrivals dispatched.
	Offered uint64
	// Wall is the measured phase wall time (pacing through drain).
	Wall time.Duration
	// MaxLag is the worst dispatch lateness behind the schedule — how far
	// the pacer itself fell behind (semaphore pressure or CPU starvation).
	MaxLag time.Duration
	// ShedNoRetryAfter counts 503 responses missing a Retry-After header;
	// the overload contract says it must be zero.
	ShedNoRetryAfter uint64

	mu      sync.Mutex
	buckets map[bucketKey]*bucket
}

func newPhaseResult(ph Phase, arrival Arrival) *PhaseResult {
	return &PhaseResult{
		Name:    ph.Name,
		Rate:    ph.Rate,
		Arrival: arrival,
		buckets: make(map[bucketKey]*bucket),
	}
}

func (p *PhaseResult) bucket(scenario string, class Class) *bucket {
	k := bucketKey{scenario, class}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.buckets[k]
	if b == nil {
		b = &bucket{hist: NewHist()}
		p.buckets[k] = b
	}
	return b
}

// Row is one scoreboard line: a (phase, scenario, class) cell.
type Row struct {
	Phase    string
	Scenario string
	Class    Class
	OK       uint64
	Shed     uint64
	NotFound uint64
	Errors   uint64
	Latency  HistSummary
}

// Rows reduces the phase to scoreboard lines, sorted by scenario then class.
func (p *PhaseResult) Rows() []Row {
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := make([]Row, 0, len(p.buckets))
	for k, b := range p.buckets {
		rows = append(rows, Row{
			Phase:    p.Name,
			Scenario: k.scenario,
			Class:    k.class,
			OK:       b.ok.Load(),
			Shed:     b.shed.Load(),
			NotFound: b.notFound.Load(),
			Errors:   b.errs.Load(),
			Latency:  b.hist.Summary(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Scenario != rows[j].Scenario {
			return rows[i].Scenario < rows[j].Scenario
		}
		return rows[i].Class < rows[j].Class
	})
	return rows
}

// Totals sums the phase's counters across all cells.
func (p *PhaseResult) Totals() (ok, shed, notFound, errs uint64) {
	for _, r := range p.Rows() {
		ok += r.OK
		shed += r.Shed
		notFound += r.NotFound
		errs += r.Errors
	}
	return
}

// Merged folds every cell of one class across scenarios into one histogram —
// the per-class phase aggregate the SLO bounds are asserted against.
func (p *PhaseResult) Merged(class Class) *Hist {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := NewHist()
	for k, b := range p.buckets {
		if k.class == class {
			out.Merge(b.hist)
		}
	}
	return out
}

// Run executes the phases in order. Each phase paces arrivals against its
// own schedule, drains in-flight requests after its last arrival, then runs
// the next phase — so every request is scored in the phase that offered it.
// Returns the completed phase results even on context cancellation.
func (r *Runner) Run(ctx context.Context, phases []Phase) ([]*PhaseResult, error) {
	var results []*PhaseResult
	var arrivals uint64 // global across phases: scenario streams keep advancing
	for pi, ph := range phases {
		res := newPhaseResult(ph, r.opts.Arrival)
		if ph.Fault != nil {
			if err := ph.Fault.Begin(); err != nil {
				return results, fmt.Errorf("phase %s: fault begin: %w", ph.Name, err)
			}
		}
		start := time.Now()
		sched := NewSchedule(r.opts.Arrival, ph.Rate, start, r.opts.Seed+int64(pi))
		deadline := start.Add(ph.Duration)
		var wg sync.WaitGroup
	pace:
		for ctx.Err() == nil {
			intended := sched.Next()
			if intended.After(deadline) {
				break
			}
			if d := time.Until(intended); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					break pace
				}
			}
			if lag := time.Since(intended); lag > res.MaxLag {
				res.MaxLag = lag
			}
			// Acquiring the outstanding-request slot may block; the wait is
			// charged to the request because latency starts at intended.
			select {
			case r.sem <- struct{}{}:
			case <-ctx.Done():
				break pace
			}
			req := r.requestFor(arrivals)
			arrivals++
			res.Offered++
			wg.Add(1)
			go func(req Request, intended time.Time) {
				defer wg.Done()
				defer func() { <-r.sem }()
				r.issue(ctx, res, req, intended)
			}(req, intended)
		}
		wg.Wait()
		res.Wall = time.Since(start)
		if ph.Fault != nil {
			if err := ph.Fault.End(); err != nil {
				return append(results, res), fmt.Errorf("phase %s: fault end: %w", ph.Name, err)
			}
		}
		results = append(results, res)
	}
	return results, ctx.Err()
}

// requestFor builds the j-th arrival: round-robin across scenarios (each
// scenario sees a contiguous index stream), with every CheckEvery-th arrival
// diverted to the acked-write probe.
func (r *Runner) requestFor(j uint64) Request {
	if r.opts.CheckEvery > 0 && j%r.opts.CheckEvery == 0 {
		return Request{
			Scenario: ProbeScenario,
			Class:    Submit,
			Method:   http.MethodPost,
			Path:     ProbeEntityPath,
			Body:     `{"delta":{"balance":1},"describe":"slo probe"}`,
		}
	}
	n := uint64(len(r.opts.Scenarios))
	return r.opts.Scenarios[j%n].Request(j / n)
}

// issue sends one request and scores it. Latency is time.Since(intended):
// schedule lag, semaphore waits, connection stalls and service time all
// charge to the request, which is the coordinated-omission-safe measure.
func (r *Runner) issue(ctx context.Context, res *PhaseResult, req Request, intended time.Time) {
	b := res.bucket(req.Scenario, req.Class)
	isProbe := req.Scenario == ProbeScenario

	rctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	var body io.Reader
	if req.Body != "" {
		body = strings.NewReader(req.Body)
	}
	hr, err := http.NewRequestWithContext(rctx, req.Method, r.opts.BaseURL+req.Path, body)
	if err != nil {
		b.errs.Add(1)
		return
	}
	if req.Body != "" {
		hr.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.opts.Client.Do(hr)
	lat := time.Since(intended)
	if err != nil {
		b.errs.Add(1)
		if isProbe {
			if definitelyNotApplied(err) {
				r.probeFailed.Add(1)
			} else {
				// The request may have reached the server before the
				// connection died: applied-or-not is unknowable from here.
				r.probeIndeterminate.Add(1)
			}
		}
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		b.ok.Add(1)
		b.hist.Record(lat)
		if isProbe {
			r.probeAcked.Add(1)
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		b.shed.Add(1)
		if resp.Header.Get("Retry-After") == "" {
			atomic.AddUint64(&res.ShedNoRetryAfter, 1)
		}
		if isProbe {
			r.probeFailed.Add(1)
		}
	case resp.StatusCode == http.StatusNotFound && req.Class != Submit:
		// A served miss: reads racing ahead of their writer, or keys whose
		// arrival was diverted to a probe. Served fast, scored as service.
		b.notFound.Add(1)
		b.hist.Record(lat)
	default:
		b.errs.Add(1)
		if isProbe {
			r.probeFailed.Add(1)
		}
	}
}

// definitelyNotApplied reports whether the error guarantees the request
// never reached the server: client-side injected faults and refused
// connections. Everything else is applied-or-not indeterminate.
func definitelyNotApplied(err error) bool {
	return errors.Is(err, netsim.ErrUnreachable) ||
		errors.Is(err, netsim.ErrDropped) ||
		errors.Is(err, syscall.ECONNREFUSED)
}

// ProbeStats is the client-side ledger of the acked-write audit.
type ProbeStats struct {
	// Acked probes got a 2xx: the server promised durability.
	Acked uint64
	// Indeterminate probes failed after possibly reaching the server.
	Indeterminate uint64
	// Failed probes definitely did not apply (refused, shed, dropped
	// client-side).
	Failed uint64
}

// ProbeStats returns the audit counters accumulated so far.
func (r *Runner) ProbeStats() ProbeStats {
	return ProbeStats{
		Acked:         r.probeAcked.Load(),
		Indeterminate: r.probeIndeterminate.Load(),
		Failed:        r.probeFailed.Load(),
	}
}

// ProbeCheck is the outcome of the lost-acked-writes audit.
type ProbeCheck struct {
	ProbeStats
	// Balance is the check entity's final balance as served by soupsd.
	Balance float64
	// OK holds when Acked <= Balance <= Acked+Indeterminate: every acked
	// write survived, and nothing applied beyond what could have been sent.
	OK bool
}

// VerifyAckedWrites reads the check entity back and bounds its balance by
// the client ledger: acked writes are a floor (an acked +1 that is missing
// was lost — the durability violation the soak exists to catch), acked plus
// indeterminate a ceiling.
func (r *Runner) VerifyAckedWrites(ctx context.Context) (ProbeCheck, error) {
	out := ProbeCheck{ProbeStats: r.ProbeStats()}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.BaseURL+ProbeEntityPath, nil)
	if err != nil {
		return out, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return out, fmt.Errorf("loadgen: read check entity: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && out.Acked == 0 {
		out.OK = out.Indeterminate >= 0 // nothing acked, nothing owed
		return out, nil
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("loadgen: read check entity: status %d", resp.StatusCode)
	}
	var state struct {
		Fields map[string]interface{} `json:"fields"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		return out, fmt.Errorf("loadgen: decode check entity: %w", err)
	}
	bal, _ := state.Fields["balance"].(float64)
	out.Balance = bal
	lo, hi := float64(out.Acked), float64(out.Acked+out.Indeterminate)
	out.OK = bal >= lo && bal <= hi
	return out, nil
}

// ScrapeMetrics fetches and parses soupsd's plain-text /metrics dump into a
// name→value map. Both line shapes are handled: the registry's
// "counter name = N" / "gauge name = N" and the handler's bare "name N";
// histogram lines are skipped.
func ScrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]float64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape /metrics: status %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "histogram ") {
			continue
		}
		var name, value string
		if i := strings.Index(line, " = "); i >= 0 {
			left := strings.Fields(line[:i])
			name = left[len(left)-1]
			value = strings.TrimSpace(line[i+3:])
		} else {
			f := strings.Fields(line)
			if len(f) != 2 {
				continue
			}
			name, value = f[0], f[1]
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, sc.Err()
}
