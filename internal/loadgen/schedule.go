package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// Arrival selects the inter-arrival distribution of the open-loop schedule.
type Arrival int

const (
	// Uniform spaces arrivals exactly 1/rate apart — the least bursty
	// offered load, useful for isolating the system's own queueing.
	Uniform Arrival = iota
	// Poisson draws exponential inter-arrival gaps with mean 1/rate — the
	// memoryless arrival process of independent users, so natural bursts
	// probe the system's headroom the way production traffic does.
	Poisson
)

// String names the arrival process.
func (a Arrival) String() string {
	if a == Poisson {
		return "poisson"
	}
	return "uniform"
}

// ParseArrival maps a flag value onto an Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return Uniform, nil
	case "poisson":
		return Poisson, nil
	}
	return Uniform, fmt.Errorf("loadgen: unknown arrival process %q (want uniform or poisson)", s)
}

// Schedule produces the intended send time of every request in an open-loop
// run. The sequence is fixed by (arrival, rate, seed) alone — the system
// under test cannot slow it down, which is what makes latencies measured
// from these times coordinated-omission-safe.
//
// A Schedule is single-consumer: only the pacing loop calls Next.
type Schedule struct {
	arrival Arrival
	mean    float64 // mean gap in nanoseconds
	rng     *rand.Rand
	next    time.Time
}

// NewSchedule creates a schedule issuing rate arrivals per second starting
// at start. Seed fixes the Poisson gap sequence; Uniform ignores it.
func NewSchedule(arrival Arrival, rate float64, start time.Time, seed int64) *Schedule {
	if rate <= 0 {
		rate = 1
	}
	return &Schedule{
		arrival: arrival,
		mean:    float64(time.Second) / rate,
		rng:     rand.New(rand.NewSource(seed)),
		next:    start,
	}
}

// Next returns the next intended send time. Times are strictly derived from
// the schedule's own sequence; they never observe the wall clock, so a
// stalled consumer accumulates a backlog of past-due intended times instead
// of quietly pausing the offered load.
func (s *Schedule) Next() time.Time {
	t := s.next
	gap := s.mean
	if s.arrival == Poisson {
		// Exponential inter-arrival: -ln(U) * mean, U in (0, 1].
		u := s.rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap = -math.Log(u) * s.mean
	}
	if gap < 1 {
		gap = 1
	}
	s.next = t.Add(time.Duration(gap))
	return t
}
