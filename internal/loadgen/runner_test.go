package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
)

// fixedScenario always issues the same request; enough to exercise pacing.
type fixedScenario struct {
	name string
	req  Request
}

func (s *fixedScenario) Name() string             { return s.name }
func (s *fixedScenario) Request(i uint64) Request { r := s.req; r.Scenario = s.name; return r }

func okServer(tb testing.TB, delay time.Duration, hits *atomic.Uint64) *httptest.Server {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"txn":1,"warnings":0}`)
	}))
	tb.Cleanup(srv.Close)
	return srv
}

func submitScenario(name string) Scenario {
	return &fixedScenario{name: name, req: Request{
		Class: Submit, Method: "POST", Path: "/entities/Account/a", Body: `{"delta":{"balance":1}}`,
	}}
}

func TestRunnerOffersScheduledLoad(t *testing.T) {
	var hits atomic.Uint64
	srv := okServer(t, 0, &hits)
	r, err := NewRunner(Options{
		BaseURL:   srv.URL,
		Client:    srv.Client(),
		Scenarios: []Scenario{submitScenario("s")},
		Arrival:   Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), []Phase{{Name: "steady", Duration: 200 * time.Millisecond, Rate: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d phase results", len(res))
	}
	// 500/s for 200ms = 100 arrivals, fixed by the schedule alone.
	if res[0].Offered < 95 || res[0].Offered > 105 {
		t.Fatalf("offered %d arrivals, want ~100", res[0].Offered)
	}
	if hits.Load() != res[0].Offered {
		t.Fatalf("server saw %d of %d offered", hits.Load(), res[0].Offered)
	}
	ok, shed, nf, errs := res[0].Totals()
	if ok != res[0].Offered || shed != 0 || nf != 0 || errs != 0 {
		t.Fatalf("totals ok=%d shed=%d nf=%d errs=%d", ok, shed, nf, errs)
	}
	rows := res[0].Rows()
	if len(rows) != 1 || rows[0].Scenario != "s" || rows[0].Class != Submit {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Latency.Count != ok {
		t.Fatalf("histogram recorded %d of %d", rows[0].Latency.Count, ok)
	}
}

// The coordinated-omission property: when the server stalls and the
// outstanding bound forces arrivals to queue, queued requests are charged
// their whole wait from the intended send time. A closed-loop bencher would
// report every request at ~the service time; the open-loop runner must show
// the backlog in the tail.
func TestRunnerChargesStallsToLatency(t *testing.T) {
	const service = 30 * time.Millisecond
	srv := okServer(t, service, nil)
	r, err := NewRunner(Options{
		BaseURL:        srv.URL,
		Client:         srv.Client(),
		Scenarios:      []Scenario{submitScenario("s")},
		Arrival:        Uniform,
		MaxOutstanding: 1, // serialise: every arrival behind the first queues
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 arrivals intended over 100ms, each served in 30ms one at a time:
	// the last one runs ~200ms behind its intended send time.
	res, err := r.Run(context.Background(), []Phase{{Name: "stall", Duration: 100 * time.Millisecond, Rate: 100}})
	if err != nil {
		t.Fatal(err)
	}
	sum := res[0].Merged(Submit).Summary()
	if sum.Count < 8 {
		t.Fatalf("only %d samples", sum.Count)
	}
	if sum.Max < 5*service {
		t.Fatalf("max latency %v hides the queueing; closed-loop artifact", sum.Max)
	}
	if res[0].MaxLag < service {
		t.Fatalf("pacer lag %v not observed despite blocked semaphore", res[0].MaxLag)
	}
}

func TestRunnerCountsShedsAndRetryAfter(t *testing.T) {
	withHeader := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if withHeader {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	run := func() *PhaseResult {
		r, err := NewRunner(Options{
			BaseURL: srv.URL, Client: srv.Client(),
			Scenarios: []Scenario{submitScenario("s")}, Arrival: Uniform,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background(), []Phase{{Name: "p", Duration: 50 * time.Millisecond, Rate: 200}})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	res := run()
	_, shed, _, _ := res.Totals()
	if shed == 0 || res.ShedNoRetryAfter != 0 {
		t.Fatalf("shed=%d noRetryAfter=%d with header present", shed, res.ShedNoRetryAfter)
	}
	withHeader = false
	res = run()
	_, shed, _, _ = res.Totals()
	if shed == 0 || res.ShedNoRetryAfter != shed {
		t.Fatalf("shed=%d noRetryAfter=%d with header missing", shed, res.ShedNoRetryAfter)
	}
}

func TestRunnerProbeAuditAcked(t *testing.T) {
	var acked atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost {
			acked.Add(1)
			fmt.Fprint(w, `{"txn":1,"warnings":0}`)
			return
		}
		fmt.Fprintf(w, `{"key":"Account/slo-check","fields":{"balance":%d}}`, acked.Load())
	}))
	t.Cleanup(srv.Close)
	r, err := NewRunner(Options{
		BaseURL: srv.URL, Client: srv.Client(),
		Scenarios:  []Scenario{submitScenario("s")},
		Arrival:    Uniform,
		CheckEvery: 1, // every arrival probes
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), []Phase{{Name: "p", Duration: 50 * time.Millisecond, Rate: 200}}); err != nil {
		t.Fatal(err)
	}
	chk, err := r.VerifyAckedWrites(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if chk.Acked == 0 || chk.Acked != acked.Load() {
		t.Fatalf("acked %d, server applied %d", chk.Acked, acked.Load())
	}
	if !chk.OK {
		t.Fatalf("audit failed on a faithful server: %+v", chk)
	}
}

func TestRunnerProbeAuditCatchesLostAck(t *testing.T) {
	var acked atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost {
			acked.Add(1) // acks...
			fmt.Fprint(w, `{"txn":1,"warnings":0}`)
			return
		}
		// ...but lost half of them.
		fmt.Fprintf(w, `{"key":"Account/slo-check","fields":{"balance":%d}}`, acked.Load()/2)
	}))
	t.Cleanup(srv.Close)
	r, err := NewRunner(Options{
		BaseURL: srv.URL, Client: srv.Client(),
		Scenarios: []Scenario{submitScenario("s")}, Arrival: Uniform, CheckEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), []Phase{{Name: "p", Duration: 50 * time.Millisecond, Rate: 200}}); err != nil {
		t.Fatal(err)
	}
	chk, err := r.VerifyAckedWrites(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if chk.OK {
		t.Fatalf("audit passed despite lost acked writes: %+v", chk)
	}
}

func TestFaultTransportPartitionNeverReachesServer(t *testing.T) {
	var hits atomic.Uint64
	srv := okServer(t, 0, &hits)
	ft := NewFaultTransport(srv.Client().Transport, netsim.Config{UnreachableDelay: time.Millisecond})
	client := &http.Client{Transport: ft}

	resp, err := client.Get(srv.URL + "/entities/Account/a")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthy link failed: %v", err)
	}
	resp.Body.Close()

	tf := &TransportFault{Transport: ft, Fault: netsim.LinkFault{Block: true}}
	if err := tf.Begin(); err != nil {
		t.Fatal(err)
	}
	before := hits.Load()
	_, err = client.Get(srv.URL + "/entities/Account/a")
	if err == nil || !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("partitioned request error = %v, want ErrUnreachable", err)
	}
	if !definitelyNotApplied(err) {
		t.Fatal("partition error not classified as definitely-not-applied")
	}
	if hits.Load() != before {
		t.Fatal("partitioned request reached the server")
	}
	if err := tf.End(); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(srv.URL + "/entities/Account/a")
	if err != nil {
		t.Fatalf("healed link still failing: %v", err)
	}
	resp.Body.Close()
}

func TestFaultTransportLossAndLatency(t *testing.T) {
	srv := okServer(t, 0, nil)
	ft := NewFaultTransport(srv.Client().Transport, netsim.Config{Seed: 3})
	client := &http.Client{Transport: ft}
	ft.SetFault(netsim.LinkFault{Loss: 1.0})
	_, err := client.Get(srv.URL + "/x")
	if !errors.Is(err, netsim.ErrDropped) {
		t.Fatalf("full loss error = %v, want ErrDropped", err)
	}
	ft.SetFault(netsim.LinkFault{ExtraLatency: 20 * time.Millisecond})
	startAt := time.Now()
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(startAt); d < 40*time.Millisecond {
		t.Fatalf("round trip %v did not pay 2x20ms extra latency", d)
	}
}

func TestScrapeMetricsParsesBothLineShapes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "counter core.apply = 123")
		fmt.Fprintln(w, "gauge queue.depth = 4")
		fmt.Fprintln(w, "histogram commit.latency: n=9 p50=1ms")
		fmt.Fprintln(w, "process.steps_executed 55")
		fmt.Fprintln(w, "queue.shed 7")
		fmt.Fprintln(w, "")
		fmt.Fprintln(w, "garbage line with no number")
	}))
	t.Cleanup(srv.Close)
	m, err := ScrapeMetrics(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"core.apply": 123, "queue.depth": 4,
		"process.steps_executed": 55, "queue.shed": 7,
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("%s = %v, want %v (map: %v)", k, m[k], v, m)
		}
	}
	if _, found := m["commit.latency"]; found {
		t.Fatal("histogram line parsed as a scalar")
	}
}
