package loadgen

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Class is the operation class a request is scored under. The scoreboard
// keeps separate percentile rows per class because their service times have
// no business being averaged together: a submit pays the commit path, a
// read is a cache hit, a query walks history.
type Class int

const (
	// Submit is a write: POST /entities (operation application through
	// admission control and the commit path).
	Submit Class = iota
	// Read is a point read: GET /entities.
	Read
	// Query walks derived or historical data: GET /history.
	Query
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Submit:
		return "submit"
	case Read:
		return "read"
	default:
		return "query"
	}
}

// Classes lists all operation classes in scoreboard order.
func Classes() []Class { return []Class{Submit, Read, Query} }

// Request is one generated HTTP request against soupsd's surface.
type Request struct {
	Scenario string
	Class    Class
	Method   string
	Path     string
	Body     string // empty for GETs
}

// Scenario generates the request stream of one business workload. Request
// must be a pure function of the index: scenarios hold no per-entity state,
// which is what lets a run stride over millions of simulated entities.
type Scenario interface {
	Name() string
	// Request builds the i-th request of this scenario's stream.
	Request(i uint64) Request
}

// Scenarios instantiates the named scenario set over an entity key space of
// the given size. Names match internal/workload's business scenarios: crm,
// banking, inventory, bookstore.
func Scenarios(names string, entities uint64, seed uint64) ([]Scenario, error) {
	if entities == 0 {
		entities = 1
	}
	var out []Scenario
	for _, name := range strings.Split(names, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "":
		case "crm":
			out = append(out, &crmScenario{entities: entities, seed: seed})
		case "banking":
			out = append(out, &bankingScenario{entities: entities, seed: seed})
		case "inventory":
			// Inventory key spaces are warehouses, not users: cap the
			// item count so the Zipf-style hot spot stays meaningful.
			items := entities / 100
			if items < 16 {
				items = 16
			}
			out = append(out, &inventoryScenario{items: items, seed: seed})
		case "bookstore":
			out = append(out, &bookstoreScenario{seed: seed})
		default:
			return nil, fmt.Errorf("loadgen: unknown scenario %q (want crm, banking, inventory, bookstore)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: no scenarios in %q", names)
	}
	return out, nil
}

// classFor picks the operation class from a stateless hash: submitRatio of
// requests write, readRatio read, the remainder query history.
func classFor(r uint64, submitPct, readPct uint64) Class {
	switch v := r % 100; {
	case v < submitPct:
		return Submit
	case v < submitPct+readPct:
		return Read
	default:
		return Query
	}
}

// readIndex maps request i onto an earlier index whose key has probably
// been written already, so point reads hit live entities instead of 404s.
func readIndex(r, i uint64) uint64 {
	if i == 0 {
		return 0
	}
	window := i
	if window > 4096 {
		window = 4096
	}
	return i - 1 - (r/100)%window
}

// --- Banking: deposits and withdrawals over a strided account space -------

type bankingScenario struct {
	entities uint64
	seed     uint64
}

func (s *bankingScenario) Name() string { return "banking" }

func (s *bankingScenario) account(i uint64) string {
	return fmt.Sprintf("bank-%d", workload.Stride(i, s.entities))
}

func (s *bankingScenario) Request(i uint64) Request {
	r := workload.Mix(s.seed^0xb4, i)
	switch classFor(r, 70, 25) {
	case Read:
		return Request{Scenario: "banking", Class: Read, Method: "GET",
			Path: "/entities/Account/" + s.account(readIndex(r, i))}
	case Query:
		return Request{Scenario: "banking", Class: Query, Method: "GET",
			Path: "/history/Account/" + s.account(readIndex(r, i))}
	default:
		amount := float64(1 + r%500)
		if r%5 == 0 { // ~20% withdrawals (principle 2.8: record the operation)
			amount = -amount
		}
		return Request{Scenario: "banking", Class: Submit, Method: "POST",
			Path: "/entities/Account/" + s.account(i),
			Body: fmt.Sprintf(`{"delta":{"balance":%g},"describe":"banking op %d"}`, amount, i)}
	}
}

// --- CRM: the lead → opportunity → order lifecycle ------------------------

type crmScenario struct {
	entities uint64
	seed     uint64
}

func (s *crmScenario) Name() string { return "crm" }

func (s *crmScenario) Request(i uint64) Request {
	r := workload.Mix(s.seed^0xc3, i)
	cls := classFor(r, 75, 20)
	caseOf := func(j uint64) uint64 { return workload.Stride(j/3, s.entities) }
	if cls == Read {
		j := readIndex(r, i)
		return Request{Scenario: "crm", Class: Read, Method: "GET",
			Path: fmt.Sprintf("/entities/Lead/L-%d", caseOf(j))}
	}
	if cls == Query {
		j := readIndex(r, i)
		return Request{Scenario: "crm", Class: Query, Method: "GET",
			Path: fmt.Sprintf("/history/Lead/L-%d", caseOf(j))}
	}
	// Submits cycle lead → opportunity → order per business case. A slice
	// of cases references a customer that is never entered (out-of-order
	// entry, principle 2.2) — the kernel accepts it as a managed warning.
	id := caseOf(i)
	switch i % 3 {
	case 0:
		return Request{Scenario: "crm", Class: Submit, Method: "POST",
			Path: fmt.Sprintf("/entities/Lead/L-%d", id),
			Body: fmt.Sprintf(`{"set":{"contact":"contact-%d","company":"company-%d","status":"NEW"}}`, id, r%97)}
	case 1:
		return Request{Scenario: "crm", Class: Submit, Method: "POST",
			Path: fmt.Sprintf("/entities/Opportunity/OP-%d", id),
			Body: fmt.Sprintf(`{"set":{"customer":"Customer/C-%d","value":%d,"status":"QUALIFIED"}}`, id, 100+r%10000)}
	default:
		return Request{Scenario: "crm", Class: Submit, Method: "POST",
			Path: fmt.Sprintf("/entities/Order/O-%d", id),
			Body: fmt.Sprintf(`{"set":{"customer":"Customer/C-%d","status":"OPEN","total":%d}}`, id, 5+r%500)}
	}
}

// --- Inventory: receipts and pickings over a hot item set -----------------

type inventoryScenario struct {
	items uint64
	seed  uint64
}

func (s *inventoryScenario) Name() string { return "inventory" }

func (s *inventoryScenario) item(r uint64) string {
	// A crude Zipf-ish skew without generator state: half the traffic lands
	// on the 1/16th hottest items, matching the packer scenario's hot spot.
	space := s.items
	if r%2 == 0 {
		space = s.items / 16
		if space == 0 {
			space = 1
		}
	}
	return fmt.Sprintf("item-%d", workload.Stride(r, space))
}

func (s *inventoryScenario) Request(i uint64) Request {
	r := workload.Mix(s.seed^0x17, i)
	switch classFor(r, 80, 15) {
	case Read:
		return Request{Scenario: "inventory", Class: Read, Method: "GET",
			Path: "/entities/Inventory/" + s.item(workload.Mix(r, 1))}
	case Query:
		return Request{Scenario: "inventory", Class: Query, Method: "GET",
			Path: "/history/Inventory/" + s.item(workload.Mix(r, 1))}
	default:
		qty := int64(1 + r%10)
		if r%10 < 6 { // sustained pick ratio > 0.5 drives items negative (principle 2.1)
			qty = -qty
		}
		return Request{Scenario: "inventory", Class: Submit, Method: "POST",
			Path: "/entities/Inventory/" + s.item(workload.Mix(r, 2)),
			Body: fmt.Sprintf(`{"delta":{"onhand":%d},"describe":"moved %d"}`, qty, qty)}
	}
}

// --- Bookstore: the overbooked bestseller ---------------------------------

type bookstoreScenario struct {
	seed uint64
}

func (s *bookstoreScenario) Name() string { return "bookstore" }

func (s *bookstoreScenario) Request(i uint64) Request {
	r := workload.Mix(s.seed^0xb0, i)
	switch classFor(r, 60, 35) {
	case Read:
		return Request{Scenario: "bookstore", Class: Read, Method: "GET",
			Path: "/entities/Book/bestseller"}
	case Query:
		return Request{Scenario: "bookstore", Class: Query, Method: "GET",
			Path: "/history/Book/bestseller"}
	default:
		// One hot entity taking every order serialises on a single lane by
		// contract — the harness's pure contention probe. Periodic restocks
		// keep the overbooking scenario alive instead of diverging.
		if i%64 == 0 {
			return Request{Scenario: "bookstore", Class: Submit, Method: "POST",
				Path: "/entities/Book/bestseller",
				Body: `{"delta":{"stock":64},"describe":"restock"}`}
		}
		return Request{Scenario: "bookstore", Class: Submit, Method: "POST",
			Path: "/entities/Book/bestseller",
			Body: fmt.Sprintf(`{"delta":{"stock":-1},"describe":"order by customer-%d"}`, r%100000)}
	}
}
