package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/netsim"
)

// FaultTransport wraps an http.RoundTripper with internal/netsim's fault
// vocabulary, applied at the client edge: base latency and jitter, message
// loss, and a schedulable LinkFault window (partition, extra loss, extra
// latency). The replication harness injects these faults on the in-process
// netsim fabric between nodes; the SLO harness drives soupsd over real HTTP,
// so the same model is applied to the client↔server link instead — a request
// that the simulated network loses or partitions away fails without ever
// reaching the server, exactly like netsim.Request, and is still charged
// against its intended send time.
type FaultTransport struct {
	// Base performs the real round trips. Defaults to http.DefaultTransport.
	Base http.RoundTripper

	mu    sync.Mutex
	cfg   netsim.Config
	fault netsim.LinkFault
	rng   *rand.Rand
}

// NewFaultTransport wraps base with the given steady-state network model.
// The zero Config adds nothing until a fault window opens.
func NewFaultTransport(base http.RoundTripper, cfg netsim.Config) *FaultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	if cfg.UnreachableDelay <= 0 {
		cfg.UnreachableDelay = 5 * time.Millisecond
	}
	return &FaultTransport{Base: base, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetFault opens (or replaces) the fault window: Block makes every request
// fail unreachable after the configured caller-side timeout, Loss drops the
// given fraction, ExtraLatency stretches each traversal.
func (t *FaultTransport) SetFault(f netsim.LinkFault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fault = f
}

// ClearFault closes the fault window (the link heals).
func (t *FaultTransport) ClearFault() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fault = netsim.LinkFault{}
}

// sample draws this request's fate under the lock: blocked, lost, or the
// one-way delays to pay around the real round trip.
func (t *FaultTransport) sample() (blocked bool, lost bool, there, back time.Duration, unreachable time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fault.Block {
		return true, false, 0, 0, t.cfg.UnreachableDelay
	}
	if t.cfg.LossRate > 0 && t.rng.Float64() < t.cfg.LossRate {
		return false, true, 0, 0, 0
	}
	if t.fault.Loss > 0 && t.rng.Float64() < t.fault.Loss {
		return false, true, 0, 0, 0
	}
	oneway := func() time.Duration {
		d := t.cfg.BaseLatency + t.fault.ExtraLatency
		if t.cfg.Jitter > 0 {
			d += time.Duration(t.rng.Int63n(int64(t.cfg.Jitter)))
		}
		return d
	}
	return false, false, oneway(), oneway(), 0
}

// RoundTrip applies the fault model around the base round trip. Blocked and
// lost requests fail with netsim.ErrUnreachable / netsim.ErrDropped (wrapped)
// without touching the network, so the caller can classify them as
// definitely-not-applied when auditing acked writes.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	blocked, lost, there, back, unreachable := t.sample()
	if blocked {
		select {
		case <-time.After(unreachable):
		case <-req.Context().Done():
		}
		return nil, fmt.Errorf("%w: client link to %s", netsim.ErrUnreachable, req.URL.Host)
	}
	if lost {
		return nil, fmt.Errorf("%w: client link to %s", netsim.ErrDropped, req.URL.Host)
	}
	if there > 0 {
		select {
		case <-time.After(there):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if back > 0 {
		select {
		case <-time.After(back):
		case <-req.Context().Done():
			resp.Body.Close()
			return nil, req.Context().Err()
		}
	}
	return resp, nil
}

// TransportFault is a phase Fault that opens a LinkFault window on a
// FaultTransport for the duration of the phase.
type TransportFault struct {
	Transport *FaultTransport
	Fault     netsim.LinkFault
}

// Begin opens the fault window.
func (f *TransportFault) Begin() error {
	f.Transport.SetFault(f.Fault)
	return nil
}

// End heals the link.
func (f *TransportFault) End() error {
	f.Transport.ClearFault()
	return nil
}
