// Package loadgen is the open-loop, coordinated-omission-safe load
// generator behind the end-to-end SLO harness (cmd/soupsbench, experiment
// E23). It drives internal/workload's business scenarios through soupsd's
// real HTTP surface at a fixed arrival rate and reports latency percentiles
// the way a production scoreboard would.
//
// Two decisions distinguish it from a naive closed-loop bencher:
//
//   - Arrivals are scheduled, not reactive. A Schedule fixes every request's
//     intended send time up front (Poisson or uniform inter-arrival gaps), so
//     the offered load never slows down just because the system under test
//     did. A closed loop — issue, wait, issue — silently converts server
//     stalls into a lower request rate and under-reports tail latency
//     (coordinated omission).
//
//   - Latency is measured from the intended send time, not from the moment
//     the request finally left the client. When the system stalls and
//     arrivals queue behind it, every queued request is charged the stall it
//     would have experienced as a real user. See docs/BENCHMARKING.md.
//
// The package holds no per-entity client state: scenarios are pure functions
// of the request index (key-space striding, workload.Stride), so a run can
// simulate millions of entities with O(1) generator memory.
package loadgen

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// histSubBits is the log-linear resolution: each power-of-two magnitude is
// split into 2^histSubBits linear sub-buckets, bounding the relative
// quantile error at 2^-histSubBits (~1.6%). This is the HDR histogram
// layout: log-scaled magnitudes for range, linear sub-buckets for precision.
const histSubBits = 6

const histSubCount = 1 << histSubBits // 64

// histBuckets spans the whole non-negative int64 nanosecond range: one
// linear region below histSubCount plus one 64-slot row per magnitude.
const histBuckets = 64 * histSubCount

// Hist is an HDR-style log-linear latency histogram: fixed memory,
// allocation-free lock-free recording, ~1.6% relative error on quantiles
// across the full nanosecond-to-minutes range. The zero value is NOT ready;
// use NewHist.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // nanoseconds, for Mean
	max    atomic.Int64
	min    atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	h := &Hist{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	return h
}

// histIndex maps a nanosecond value to its bucket.
func histIndex(ns int64) int {
	v := uint64(ns)
	if v < histSubCount {
		return int(v)
	}
	// Normalise v into [histSubCount, 2*histSubCount) and index by
	// (magnitude row, linear offset within the row).
	shift := bits.Len64(v) - (histSubBits + 1)
	return (shift+1)*histSubCount + int(v>>uint(shift)) - histSubCount
}

// histUpper returns the inclusive upper bound of bucket i — the value
// quantiles report, so estimates err on the conservative (larger) side.
func histUpper(i int) time.Duration {
	if i < histSubCount {
		return time.Duration(i)
	}
	shift := i/histSubCount - 1
	off := uint64(i%histSubCount) + histSubCount
	return time.Duration(((off+1)<<uint(shift) - 1))
}

// Record adds one observation. Negative durations clamp to zero (a latency
// charged from an intended send time can never legitimately be negative;
// clock steps are clamped rather than dropped so counts stay honest).
func (h *Hist) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(ns)].Add(1)
	h.total.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded value, exactly (not bucket-rounded).
func (h *Hist) Max() time.Duration {
	if h.Count() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest recorded value, exactly.
func (h *Hist) Min() time.Duration {
	if h.Count() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Mean returns the mean of all recorded values.
func (h *Hist) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1).
// The true max is substituted for the top bucket so p100 is exact.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			upper := histUpper(i)
			if max := h.Max(); upper > max {
				return max
			}
			return upper
		}
	}
	return h.Max()
}

// Merge folds other's observations into h. Not linearisable against
// concurrent Records on other; merge quiesced histograms.
func (h *Hist) Merge(other *Hist) {
	if other == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
			h.total.Add(c)
		}
	}
	h.sum.Add(other.sum.Load())
	if om := other.max.Load(); om > h.max.Load() {
		h.max.Store(om)
	}
	if om := other.min.Load(); om < h.min.Load() {
		h.min.Store(om)
	}
}

// HistSummary is the scoreboard row a histogram reduces to.
type HistSummary struct {
	Count               uint64
	Mean                time.Duration
	P50, P99, P999, Max time.Duration
}

// Summary returns the percentile summary the SLO scoreboard reports.
func (h *Hist) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the summary compactly.
func (s HistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.P999.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
