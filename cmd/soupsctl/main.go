// Command soupsctl is a small client for soupsd.
//
// Usage:
//
//	soupsctl -server http://localhost:8080 get Order O-1
//	soupsctl -server http://localhost:8080 set Order O-1 status=OPEN total=99.5
//	soupsctl -server http://localhost:8080 delta Account A-1 balance=-25
//	soupsctl -server http://localhost:8080 history Order O-1
//	soupsctl -server http://localhost:8080 metrics
//	soupsctl -server http://localhost:8080 status
//	soupsctl -server http://localhost:8080 backup store.ndjson
//	soupsctl -server http://localhost:8080 restore store.ndjson
//	soupsctl -server http://localhost:8080 checkpoint
//	soupsctl -server http://localhost:8081 promote
//
// promote tells a standby soupsd to take over as primary (recovering a full
// kernel from its received log); point -server at the standby, not the dead
// primary. backup streams the node's full log through the export codec (stdout when
// no file is given); restore replays such a stream into a freshly started
// node with the same unit count.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
)

var server = flag.String("server", "http://localhost:8080", "soupsd base URL")

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "get":
		requireArgs(args, 3)
		get(fmt.Sprintf("%s/entities/%s/%s", *server, args[1], args[2]))
	case "history":
		requireArgs(args, 3)
		get(fmt.Sprintf("%s/history/%s/%s", *server, args[1], args[2]))
	case "warnings":
		get(*server + "/warnings")
	case "metrics":
		get(*server + "/metrics")
	case "status":
		status()
	case "set", "delta":
		requireArgs(args, 4)
		post(args[0], args[1], args[2], args[3:])
	case "backup":
		backup(args[1:])
	case "restore":
		restore(args[1:])
	case "checkpoint":
		postEmpty(*server + "/checkpoint")
	case "promote":
		postEmpty(*server + "/promote")
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: soupsctl [-server URL] command ...
  get|history Type ID
  set|delta Type ID field=value ...
  warnings | metrics | checkpoint
  status           degraded/overload/breaker posture of the node
  promote          tell a standby to take over as primary
  backup  [file]   stream the node's log to file (default stdout)
  restore [file]   replay a backup stream into the node (default stdin)`)
	os.Exit(2)
}

// backup streams GET /backup to a file or stdout, verifying the stream's
// end-of-stream trailer on the way through. The server answers 200 before
// the export can fail, so a mid-stream error only shows as a short body —
// and any prefix of the line-per-document format is well-formed, which makes
// the trailer the sole truncation check. Validating here means a bad backup
// fails the backup command, not the eventual restore.
func backup(args []string) {
	out := os.Stdout
	if len(args) > 0 {
		f, err := os.Create(args[0])
		if err != nil {
			log.Fatalf("backup: %v", err)
		}
		defer f.Close()
		out = f
	}
	url := *server + "/backup"
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("backup: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	var n int64
	lines := 0
	var lastLine []byte
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			if _, werr := out.Write(line); werr != nil {
				log.Fatalf("backup: %v", werr)
			}
			n += int64(len(line))
			lines++
			lastLine = append(lastLine[:0], line...)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("backup: %v", err)
		}
	}
	var trailer struct {
		Lines *int `json:"lines"`
	}
	// lines counts header + content + trailer; the trailer claims content only.
	if err := json.Unmarshal(lastLine, &trailer); err != nil || trailer.Lines == nil || *trailer.Lines != lines-2 {
		log.Fatalf("backup: stream is truncated or corrupt (missing or mismatched trailer after %d lines); do not keep this file", lines)
	}
	fmt.Fprintf(os.Stderr, "backup: %d bytes, %d entries, trailer ok\n", n, *trailer.Lines)
}

// restore POSTs a backup stream from a file or stdin to /restore.
func restore(args []string) {
	in := io.Reader(os.Stdin)
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		defer f.Close()
		in = f
	}
	url := *server + "/restore"
	resp, err := http.Post(url, "application/x-ndjson", in)
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s\n", bytes.TrimSpace(body))
	if resp.StatusCode >= 300 {
		os.Exit(1)
	}
}

// status renders GET /status as a short operator summary: role, write
// availability, any degraded units, shed counters and breaker states. Fetch
// /status directly for the raw JSON.
func status() {
	url := *server + "/status"
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		fmt.Printf("%s\n", bytes.TrimSpace(body))
		os.Exit(1)
	}
	var st struct {
		Role   string `json:"role"`
		Health *struct {
			WritesOK      bool `json:"writes_ok"`
			DegradedUnits int  `json:"degraded_units"`
			Units         []struct {
				Unit      string `json:"unit"`
				Depth     int    `json:"queue_depth"`
				Degraded  bool   `json:"degraded"`
				Reason    string `json:"reason"`
				Permanent bool   `json:"permanent"`
				Error     string `json:"error"`
			} `json:"units"`
			QueueDepth      int               `json:"queue_depth"`
			QueueShed       uint64            `json:"queue_shed"`
			DeadlineDropped uint64            `json:"deadline_dropped"`
			WritesRefused   uint64            `json:"writes_refused"`
			Breakers        map[string]string `json:"breakers"`
		} `json:"health"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		log.Fatalf("status: malformed response: %v", err)
	}
	fmt.Printf("role: %s\n", st.Role)
	if st.Health == nil {
		return
	}
	h := st.Health
	writes := "ok"
	if !h.WritesOK {
		writes = fmt.Sprintf("DEGRADED (%d unit(s) read-only)", h.DegradedUnits)
	}
	fmt.Printf("writes: %s\n", writes)
	fmt.Printf("queue: depth=%d shed=%d deadline_dropped=%d writes_refused=%d\n",
		h.QueueDepth, h.QueueShed, h.DeadlineDropped, h.WritesRefused)
	for _, u := range h.Units {
		if !u.Degraded {
			continue
		}
		perm := "retryable"
		if u.Permanent {
			perm = "permanent"
		}
		fmt.Printf("  %s: degraded reason=%s (%s) err=%s\n", u.Unit, u.Reason, perm, u.Error)
	}
	if len(h.Breakers) > 0 {
		names := make([]string, 0, len(h.Breakers))
		for name := range h.Breakers {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("breakers:\n")
		for _, name := range names {
			fmt.Printf("  %s: %s\n", name, h.Breakers[name])
		}
	}
}

// postEmpty POSTs with no body and prints the response.
func postEmpty(url string) {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s\n", bytes.TrimSpace(body))
	if resp.StatusCode >= 300 {
		os.Exit(1)
	}
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s\n", bytes.TrimSpace(body))
	if resp.StatusCode >= 300 {
		os.Exit(1)
	}
}

func post(kind, typeName, id string, assignments []string) {
	payload := map[string]interface{}{}
	values := map[string]interface{}{}
	for _, a := range assignments {
		parts := strings.SplitN(a, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("malformed assignment %q (want field=value)", a)
		}
		values[parts[0]] = parseValue(parts[1])
	}
	if kind == "set" {
		payload["set"] = values
	} else {
		deltas := map[string]float64{}
		for k, v := range values {
			f, ok := v.(float64)
			if !ok {
				log.Fatalf("delta value for %s must be numeric", k)
			}
			deltas[k] = f
		}
		payload["delta"] = deltas
	}
	body, _ := json.Marshal(payload)
	url := fmt.Sprintf("%s/entities/%s/%s", *server, typeName, id)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s\n", bytes.TrimSpace(out))
	if resp.StatusCode >= 300 {
		os.Exit(1)
	}
}

// parseValue interprets booleans and numbers; everything else stays a string.
func parseValue(s string) interface{} {
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
