// Command soupsctl is a small client for soupsd.
//
// Usage:
//
//	soupsctl -server http://localhost:8080 get Order O-1
//	soupsctl -server http://localhost:8080 set Order O-1 status=OPEN total=99.5
//	soupsctl -server http://localhost:8080 delta Account A-1 balance=-25
//	soupsctl -server http://localhost:8080 history Order O-1
//	soupsctl -server http://localhost:8080 metrics
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
)

var server = flag.String("server", "http://localhost:8080", "soupsd base URL")

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "get":
		requireArgs(args, 3)
		get(fmt.Sprintf("%s/entities/%s/%s", *server, args[1], args[2]))
	case "history":
		requireArgs(args, 3)
		get(fmt.Sprintf("%s/history/%s/%s", *server, args[1], args[2]))
	case "warnings":
		get(*server + "/warnings")
	case "metrics":
		get(*server + "/metrics")
	case "set", "delta":
		requireArgs(args, 4)
		post(args[0], args[1], args[2], args[3:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: soupsctl [-server URL] get|set|delta|history|warnings|metrics [Type ID] [field=value ...]")
	os.Exit(2)
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s\n", bytes.TrimSpace(body))
	if resp.StatusCode >= 300 {
		os.Exit(1)
	}
}

func post(kind, typeName, id string, assignments []string) {
	payload := map[string]interface{}{}
	values := map[string]interface{}{}
	for _, a := range assignments {
		parts := strings.SplitN(a, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("malformed assignment %q (want field=value)", a)
		}
		values[parts[0]] = parseValue(parts[1])
	}
	if kind == "set" {
		payload["set"] = values
	} else {
		deltas := map[string]float64{}
		for k, v := range values {
			f, ok := v.(float64)
			if !ok {
				log.Fatalf("delta value for %s must be numeric", k)
			}
			deltas[k] = f
		}
		payload["delta"] = deltas
	}
	body, _ := json.Marshal(payload)
	url := fmt.Sprintf("%s/entities/%s/%s", *server, typeName, id)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s\n", bytes.TrimSpace(out))
	if resp.StatusCode >= 300 {
		os.Exit(1)
	}
}

// parseValue interprets booleans and numbers; everything else stays a string.
func parseValue(s string) interface{} {
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
