// WAL-shipped replication over HTTP: a primary soupsd ships every commit
// cycle (and obsolescence/compaction mark) of every unit to standby soupsd
// processes; a standby appends the received stream into the same unit-N WAL
// layout a durable primary writes, so promotion is nothing special — close
// the receivers and run the ordinary recovery-based bootstrap over the data
// directory.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/clock"
	"repro/internal/lsdb"
	"repro/internal/replica"
	"repro/internal/storage"
)

var (
	role        = flag.String("role", "primary", "primary (serves data, ships its WAL) or standby (receives the stream; POST /promote to take over)")
	standbysCSV = flag.String("standbys", "", "comma-separated standby base URLs the primary ships every commit to")
	ackFlag     = flag.String("ack", "async", "replication ack mode: async, sync or quorum")
	shipTimeout = flag.Duration("ship-timeout", 500*time.Millisecond, "timeout per ship request")
	shipWindow  = flag.Int("ship-window", 0, "per-standby in-flight ship window (0 = library default 128); a full lane fails that ship instead of stalling the commit")
	catchupSize = flag.Int("catchup-chunk", 0, "appended records per catch-up chunk served and pulled (0 = library default 512)")
	persistMark = flag.Int("persist-watermark-every", 0, "standby role: persist the replication watermark every N batches per unit (0 = every batch)")
)

// shipEnvelope is the HTTP wire form of a replica.ShipBatch: one JSON
// document per batch, records in the portable codec (which carries kind and
// compaction horizon, so marks ship like appends).
type shipEnvelope struct {
	From    string                 `json:"from"`
	Unit    int                    `json:"unit"`
	Records []lsdb.PersistedRecord `json:"records"`
}

// httpTransport implements replica.Transport as POST {standby}/replicate.
// Asynchronous mode sends the same bounded request and merely ignores the
// verdict — a down standby costs at most the timeout, and the shipper's
// failure counter still ticks.
type httpTransport struct {
	client *http.Client
	urls   map[clock.NodeID]string
}

func (t *httpTransport) Ship(peer clock.NodeID, batch replica.ShipBatch, _ bool, timeout time.Duration) error {
	base, ok := t.urls[peer]
	if !ok {
		return fmt.Errorf("soupsd: unknown standby %s", peer)
	}
	env := shipEnvelope{From: string(batch.From), Unit: batch.Unit, Records: make([]lsdb.PersistedRecord, 0, len(batch.Records))}
	for _, rec := range batch.Records {
		env.Records = append(env.Records, lsdb.ToPersisted(rec))
	}
	body, err := json.Marshal(env)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/replicate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("soupsd: standby %s answered %s", peer, resp.Status)
	}
	return nil
}

// replicationFromFlags builds the kernel's replication options from -standbys
// and -ack; nil when replication is off.
func replicationFromFlags() (*repro.ReplicationOptions, error) {
	if *standbysCSV == "" {
		return nil, nil
	}
	mode, err := replica.ParseAckMode(*ackFlag)
	if err != nil {
		return nil, err
	}
	urls := map[clock.NodeID]string{}
	var ids []clock.NodeID
	for i, u := range strings.Split(*standbysCSV, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		id := clock.NodeID(fmt.Sprintf("standby-%d", i))
		ids = append(ids, id)
		urls[id] = strings.TrimRight(u, "/")
	}
	if len(ids) == 0 {
		return nil, nil
	}
	return &repro.ReplicationOptions{
		Self:         "soupsd",
		Standbys:     ids,
		Ack:          mode,
		Timeout:      *shipTimeout,
		Transport:    &httpTransport{client: &http.Client{}, urls: urls},
		Window:       *shipWindow,
		CatchupChunk: *catchupSize,
	}, nil
}

// standbyReceiver is the standby role's whole state: one WAL per unit, in the
// exact directory layout a durable primary uses, fed by /replicate.
type standbyReceiver struct {
	sb   *replica.Standby
	wals []*storage.WAL
}

func openStandbyReceiver(dataDir string, units int, sync storage.SyncMode) (*standbyReceiver, error) {
	if dataDir == "" {
		return nil, fmt.Errorf("soupsd: -role standby requires -data-dir (the received log must survive this process)")
	}
	var wals []*storage.WAL
	backends := make([]storage.Backend, 0, units)
	for i := 0; i < units; i++ {
		w, err := storage.OpenWAL(storage.WALOptions{
			Dir:  filepath.Join(dataDir, fmt.Sprintf("unit-%d", i)),
			Sync: sync,
		})
		if err != nil {
			for _, open := range wals {
				open.Close()
			}
			return nil, fmt.Errorf("soupsd: opening standby unit %d: %w", i, err)
		}
		wals = append(wals, w)
		backends = append(backends, w)
	}
	sb, err := replica.NewStandby(replica.StandbyOptions{
		Self:         "standby",
		Backends:     backends,
		PersistEvery: *persistMark,
		CatchupChunk: *catchupSize,
	})
	if err != nil {
		for _, open := range wals {
			open.Close()
		}
		return nil, err
	}
	return &standbyReceiver{sb: sb, wals: wals}, nil
}

// close fences the receiver and releases the WALs (promotion reopens them
// through the ordinary recovery path).
func (r *standbyReceiver) close() error {
	r.sb.Stop()
	var firstErr error
	for _, w := range r.wals {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// handleReplicate receives one shipped batch (standby role only). A 200
// answer means the batch is appended to the unit's WAL — with -fsync-mode
// always, durably — which is what a synchronous primary's ack relies on.
func (s *server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	recv := s.standby
	s.mu.Unlock()
	if recv == nil {
		http.Error(w, "not a standby", http.StatusBadRequest)
		return
	}
	var env shipEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		http.Error(w, "malformed batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	records := make([]lsdb.Record, 0, len(env.Records))
	for _, pr := range env.Records {
		rec, err := lsdb.FromPersisted(pr)
		if err != nil {
			http.Error(w, "malformed record: "+err.Error(), http.StatusBadRequest)
			return
		}
		records = append(records, rec)
	}
	wm, gap, err := recv.sb.Receive(replica.ShipBatch{From: clock.NodeID(env.From), Unit: env.Unit, Records: records})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]interface{}{"watermark": wm, "gap": gap})
}

// handleCatchup serves one streaming catch-up chunk from either role: a
// primary answers from its live unit log, a standby from its received log.
// Query parameters: unit, after (the puller's cursor LSN), limit (appended
// records per chunk; the server clamps it). The response carries the chunk
// plus "more" — pullers loop, advancing "after" to the highest append LSN
// received, until more is false.
func (s *server) handleCatchup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	unit, err := strconv.Atoi(r.URL.Query().Get("unit"))
	if err != nil {
		http.Error(w, "bad unit: "+err.Error(), http.StatusBadRequest)
		return
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil && r.URL.Query().Get("after") != "" {
		http.Error(w, "bad after: "+err.Error(), http.StatusBadRequest)
		return
	}
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	max := maxCatchupChunk
	if *catchupSize > 0 && *catchupSize < max {
		max = *catchupSize
	}
	if limit <= 0 || limit > max {
		limit = max
	}
	s.mu.Lock()
	recv, k := s.standby, s.kernel
	s.mu.Unlock()
	var recs []lsdb.Record
	var more bool
	switch {
	case recv != nil:
		recs, more, err = recv.sb.ServeCatchup(unit, after, limit)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	case k != nil:
		// One extra record decides more; the slice below cuts it back off.
		recs = k.UnitTail(unit, after, limit+1)
		if len(recs) > limit {
			recs, more = recs[:limit], true
		}
	default:
		http.Error(w, "no log to serve", http.StatusServiceUnavailable)
		return
	}
	out := make([]lsdb.PersistedRecord, 0, len(recs))
	for _, rec := range recs {
		out = append(out, lsdb.ToPersisted(rec))
	}
	writeJSON(w, map[string]interface{}{"records": out, "more": more})
}

// maxCatchupChunk caps how many appended records one /catchup response may
// carry regardless of what the puller asked for.
const maxCatchupChunk = 512

// handlePromote turns a standby into the primary: fence the receivers, close
// their WALs, and bootstrap a kernel over the data directory — the received
// log replays through the same recovery a restarted durable primary runs.
// The promoted node honours the replication flags, so a standby started with
// -standbys ships onward to the rest of the cluster after taking over.
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.standby == nil {
		http.Error(w, "not a standby", http.StatusBadRequest)
		return
	}
	if err := s.standby.close(); err != nil {
		http.Error(w, "closing receivers: "+err.Error(), http.StatusInternalServerError)
		return
	}
	k, err := openKernel()
	if err != nil {
		http.Error(w, "recovering kernel: "+err.Error(), http.StatusInternalServerError)
		return
	}
	k.Start()
	s.standby = nil
	s.kernel = k
	writeJSON(w, map[string]string{"status": "promoted", "role": "primary"})
}

// replicationMetrics appends the replication lines to /metrics.
func (s *server) replicationMetrics(w io.Writer, k *repro.Kernel, recv *standbyReceiver) {
	if recv != nil {
		st := recv.sb.Stats()
		fmt.Fprintf(w, "replication.role standby\n")
		fmt.Fprintf(w, "replication.batches_received %d\n", st.BatchesReceived)
		fmt.Fprintf(w, "replication.records_received %d\n", st.RecordsReceived)
		fmt.Fprintf(w, "replication.duplicates %d\n", st.Duplicates)
		fmt.Fprintf(w, "replication.gaps %d\n", st.Gaps)
		fmt.Fprintf(w, "replication.catchup_rounds %d\n", st.CatchupRounds)
		fmt.Fprintf(w, "replication.catchup_records %d\n", st.CatchupRecords)
		for i := 0; i < recv.sb.Units(); i++ {
			fmt.Fprintf(w, "replication.watermark.unit%d %d\n", i, recv.sb.Watermark(i))
		}
		return
	}
	rs := k.ReplicaStats()
	if !rs.Enabled {
		return
	}
	fmt.Fprintf(w, "replication.role primary\n")
	fmt.Fprintf(w, "replication.mode %s\n", rs.Mode)
	fmt.Fprintf(w, "replication.standbys %d\n", rs.Standbys)
	fmt.Fprintf(w, "replication.batches_shipped %d\n", rs.Ship.BatchesShipped)
	fmt.Fprintf(w, "replication.records_shipped %d\n", rs.Ship.RecordsShipped)
	fmt.Fprintf(w, "replication.sync_acks %d\n", rs.Ship.SyncAcks)
	fmt.Fprintf(w, "replication.ship_failures %d\n", rs.Ship.ShipFailures)
	fmt.Fprintf(w, "replication.ship_retries %d\n", rs.Ship.ShipRetries)
	fmt.Fprintf(w, "replication.window_overflows %d\n", rs.Ship.WindowOverflows)
	fmt.Fprintf(w, "replication.catchup_served %d\n", rs.Ship.CatchupServed)
	fmt.Fprintf(w, "replication.breaker_opens %d\n", rs.Ship.BreakerOpens)
	fmt.Fprintf(w, "replication.breaker_short_circuits %d\n", rs.Ship.BreakerShortCircuits)
	states := k.Health().Breakers
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "replication.breaker.%s %s\n", name, states[name])
	}
}
