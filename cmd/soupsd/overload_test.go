package main

// Error mapping under concurrent overload: many clients hitting the HTTP
// surface at once must each get a coherent answer — 202 or 503+Retry-After,
// never a torn response or a miscounted shed — and the counters the load
// harness cross-checks (queue_shed, writes_refused) must equal the 503s the
// clients actually observed. Run with -race; the point of these tests is the
// interleavings.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEventSubmitShedsExactlyPastDepthUnderConcurrency floods /events from
// many goroutines against a tiny admission window. The lanes are not started,
// so the queue cannot drain mid-test: exactly depth submissions may be
// accepted, every other one must shed with 503 + Retry-After, and the
// server-side shed counter must equal the client-observed 503s — the same
// invariant the SLO harness asserts against /metrics.
func TestEventSubmitShedsExactlyPastDepthUnderConcurrency(t *testing.T) {
	const depth, clients = 3, 64
	s, _ := newTestServer(t, depth)

	var accepted, shed, other atomic.Uint64
	var missingRetryAfter atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := doJSON(t, s.handleEvents, "POST", "/events", `{"name":"noop","type":"Account","id":"A1"}`)
			switch w.Code {
			case http.StatusAccepted:
				accepted.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
				if w.Header().Get("Retry-After") == "" {
					missingRetryAfter.Add(1)
				}
				if !strings.Contains(w.Body.String(), "overloaded") {
					other.Add(1)
				}
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := accepted.Load(); got != depth {
		t.Fatalf("accepted %d of %d concurrent submits, want exactly the queue depth %d", got, clients, depth)
	}
	if got := shed.Load(); got != clients-depth {
		t.Fatalf("shed %d, want %d", got, clients-depth)
	}
	if n := missingRetryAfter.Load(); n != 0 {
		t.Fatalf("%d shed responses were missing Retry-After", n)
	}
	if n := other.Load(); n != 0 {
		t.Fatalf("%d responses were neither a clean 202 nor a well-formed 503", n)
	}
	if h := s.k().Health(); h.QueueShed != uint64(clients-depth) {
		t.Fatalf("server queue_shed = %d, want %d (must match client-observed 503s)", h.QueueShed, clients-depth)
	}

	// Draining the queue reopens admission.
	s.k().Start()
	s.k().Drain()
	if w := doJSON(t, s.handleEvents, "POST", "/events", `{"name":"noop","type":"Account","id":"A1"}`); w.Code != http.StatusAccepted {
		t.Fatalf("submit after drain = %d %s, want 202", w.Code, w.Body)
	}
}

// TestDegradedStorageConcurrentWriteStormMapsEveryRefusal trips degraded
// read-only mode while a storm of writers and readers is in flight: every
// write must come back 503 + Retry-After naming the degradation, every read
// must keep serving the pre-fault state, the probes (/readyz vs /healthz)
// must disagree in exactly the documented way, and writes_refused must equal
// the write 503s the clients saw — including the write that tripped the
// degradation.
func TestDegradedStorageConcurrentWriteStormMapsEveryRefusal(t *testing.T) {
	const writers, readers = 32, 16
	s, fb := newTestServer(t, 0)

	seed := doJSON(t, s.handleEntity, "POST", "/entities/Account/A1", `{"delta":{"balance":10}}`)
	if seed.Code != http.StatusOK {
		t.Fatalf("seed write = %d %s", seed.Code, seed.Body)
	}
	fb.FailAppends(1 << 30)

	// Trip the degradation deterministically before the storm so every
	// concurrent probe observes the degraded posture, not the transition.
	trip := doJSON(t, s.handleEntity, "POST", "/entities/Account/A1", `{"delta":{"balance":5}}`)
	if trip.Code != http.StatusServiceUnavailable || trip.Header().Get("Retry-After") == "" {
		t.Fatalf("tripping write = %d (Retry-After %q), want 503 with hint", trip.Code, trip.Header().Get("Retry-After"))
	}

	var refused, badWrite, badRead atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := doJSON(t, s.handleEntity, "POST", "/entities/Account/A1", `{"delta":{"balance":5}}`)
			if w.Code != http.StatusServiceUnavailable ||
				w.Header().Get("Retry-After") == "" ||
				!strings.Contains(w.Body.String(), "degraded") {
				badWrite.Add(1)
				return
			}
			refused.Add(1)
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := doJSON(t, s.handleEntity, "GET", "/entities/Account/A1", "")
			var st struct {
				Fields map[string]interface{} `json:"fields"`
			}
			if r.Code != http.StatusOK ||
				json.Unmarshal(r.Body.Bytes(), &st) != nil ||
				st.Fields["balance"] != 10.0 {
				badRead.Add(1)
			}
		}()
	}
	// Probes poll concurrently with the storm: readiness must fail while
	// liveness stays green, with no window where either flips the other way.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w := doJSON(t, s.handleReadyz, "GET", "/readyz", ""); w.Code != http.StatusServiceUnavailable {
				badRead.Add(1)
			}
			if w := doJSON(t, s.handleHealthz, "GET", "/healthz", ""); w.Code != http.StatusOK {
				badRead.Add(1)
			}
		}()
	}
	wg.Wait()

	if n := badWrite.Load(); n != 0 {
		t.Fatalf("%d degraded writes were not mapped to 503 + Retry-After naming the degradation", n)
	}
	if n := badRead.Load(); n != 0 {
		t.Fatalf("%d reads/probes misbehaved during the write storm", n)
	}
	if got := refused.Load(); got != writers {
		t.Fatalf("refused %d of %d concurrent writes, want all of them", got, writers)
	}
	if h := s.k().Health(); h.WritesRefused != writers+1 {
		t.Fatalf("server writes_refused = %d, want %d (tripping write + storm, matching client-observed 503s)", h.WritesRefused, writers+1)
	}

	// Heal and repair; the write path reopens for everyone at once.
	fb.Heal()
	if err := s.k().RepairUnit(0, nil); err != nil {
		t.Fatalf("RepairUnit: %v", err)
	}
	var failedAfterRepair atomic.Uint64
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w := doJSON(t, s.handleEntity, "POST", "/entities/Account/A1", `{"delta":{"balance":1}}`); w.Code != http.StatusOK {
				failedAfterRepair.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := failedAfterRepair.Load(); n != 0 {
		t.Fatalf("%d writes still refused after heal + repair", n)
	}
	r := doJSON(t, s.handleEntity, "GET", "/entities/Account/A1", "")
	var st struct {
		Fields map[string]interface{} `json:"fields"`
	}
	if err := json.Unmarshal(r.Body.Bytes(), &st); err != nil || st.Fields["balance"] != 10.0+writers {
		t.Fatalf("balance after recovery = %v (err %v), want %d — a refused write must never half-apply", st.Fields["balance"], err, 10+writers)
	}
}
