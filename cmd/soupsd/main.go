// Command soupsd runs one kernel node behind an HTTP/JSON API, so the system
// can be exercised from outside Go.
//
// Endpoints:
//
//	GET  /entities/{Type}/{ID}            current subjective state
//	POST /entities/{Type}/{ID}            apply operations: {"set":{"f":v}, "delta":{"f":n}, "describe":"..."}
//	POST /events                          submit a process-step event: {"name":..., "type":..., "id":..., "data":{...}, "deadline_ms":N}
//	GET  /history/{Type}/{ID}             insert-only version trace
//	GET  /warnings                        managed constraint violations so far
//	GET  /metrics                         kernel metric dump (plain text)
//	GET  /healthz                         liveness probe
//	GET  /readyz                          readiness: 503 while writes are degraded or shedding
//	GET  /status                          degraded/overload/breaker posture as JSON
//	GET  /backup                          portable JSON export of every unit's log
//	POST /restore                         replay a backup stream into a fresh node
//	POST /checkpoint                      force a storage checkpoint on every unit
//	POST /replicate                       receive one shipped WAL batch (standby role)
//	POST /promote                         standby takes over as primary
//
// Writes refused by admission control (per-unit queue past -max-queue-depth)
// or by a unit in degraded read-only mode answer 503 with a Retry-After
// header; reads keep serving either way. See the degraded-modes runbook in
// docs/OPERATIONS.md.
//
// Usage: soupsd [-addr :8080] [-units 4] [-consistency eventual|strong]
//
//	[-workers 2] [-groupcommit] [-maxbatch 64]
//	[-data-dir DIR] [-fsync-mode always|os] [-checkpoint-every 4096]
//	[-role primary|standby] [-standbys URL,URL] [-ack async|sync|quorum]
//	[-max-queue-depth 4096] [-retry-after 1s]
//
// With -data-dir the node is durable: every commit cycle is appended to a
// segmented write-ahead log per unit, startup recovers from the latest
// checkpoint plus the log tail (truncating a torn final record if the
// previous process died mid-write), and SIGINT/SIGTERM flush before exit.
//
// With -standbys the primary also ships every commit cycle to the listed
// standby processes (-ack picks async, sync or quorum acknowledgement). A
// -role standby process serves only /replicate, /metrics and /healthz until
// POST /promote recovers a full kernel from the received log; see
// docs/OPERATIONS.md for the failover runbook.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/lsdb"
	"repro/internal/queue"
	"repro/internal/storage"
)

var (
	addr            = flag.String("addr", ":8080", "listen address")
	units           = flag.Int("units", 4, "number of serialization units")
	consistency     = flag.String("consistency", "eventual", "eventual or strong")
	workers         = flag.Int("workers", 0, "process-step workers per unit in the work-stealing pool (0 = default 2)")
	groupCommit     = flag.Bool("groupcommit", false, "batch concurrent appends via per-shard group commit")
	maxBatch        = flag.Int("maxbatch", 0, "max appends per group-commit batch (0 = default 64)")
	dataDir         = flag.String("data-dir", "", "durable mode: write-ahead log + checkpoint directory (empty = in-memory)")
	fsyncMode       = flag.String("fsync-mode", "os", "WAL durability: always (fsync per commit cycle) or os (page cache)")
	ckptEvery       = flag.Int("checkpoint-every", 4096, "records per unit between automatic checkpoints/flushes (-1 disables)")
	flushBytes      = flag.Int64("flush-bytes", 0, "bytes of committed records per unit between tiered background flushes (0 = default 4 MiB, -1 disables the byte trigger)")
	compactAfter    = flag.Int("compaction-after", 0, "level-0 SSTables per unit before background compaction merges them (0 = default 4)")
	compactThrottle = flag.Duration("compaction-throttle", 0, "pause between compaction merge batches (0 = default 500µs, -1ns disables)")
	noTiered        = flag.Bool("no-tiered-storage", false, "disable the LSM tier: bare WAL with stop-the-world checkpoints (E22 baseline)")
	maxDepth        = flag.Int("max-queue-depth", 4096, "admission control: shed event submits past this per-unit queue depth with 503 (0 = unbounded)")
	retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After hint on 503 backpressure/degraded responses")
	faultInjection  = flag.Bool("fault-injection", false, "benchmark harness only: run each unit on an in-memory fault-injecting backend and expose POST /fault (incompatible with -data-dir)")
)

// server is one soupsd node: in the primary role kernel is set; in the
// standby role standby is set until a promotion swaps a recovered kernel in.
type server struct {
	mu      sync.Mutex
	kernel  *repro.Kernel
	standby *standbyReceiver
}

// k returns the live kernel, or nil while this node is an unpromoted standby.
func (s *server) k() *repro.Kernel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kernel
}

// dataKernel resolves the kernel for a data-path request, answering 503 for
// an unpromoted standby (the data lives in its received log, unopened).
func (s *server) dataKernel(w http.ResponseWriter) *repro.Kernel {
	k := s.k()
	if k == nil {
		http.Error(w, "standby: not serving data (POST /promote to take over)", http.StatusServiceUnavailable)
	}
	return k
}

type opRequest struct {
	Set      map[string]interface{} `json:"set,omitempty"`
	Delta    map[string]float64     `json:"delta,omitempty"`
	Describe string                 `json:"describe,omitempty"`
}

type stateResponse struct {
	Key       string                 `json:"key"`
	Fields    map[string]interface{} `json:"fields"`
	Tentative bool                   `json:"tentative,omitempty"`
	Deleted   bool                   `json:"deleted,omitempty"`
}

// openKernel bootstraps a kernel from the command-line flags. The promotion
// path reuses it: a promoted standby is configured exactly like a primary
// started over the same data directory.
func openKernel() (*repro.Kernel, error) {
	mode := repro.EventualSOUPS
	if strings.HasPrefix(strings.ToLower(*consistency), "strong") {
		mode = repro.StrongSingleCopy
	}
	sync, err := storage.ParseSyncMode(*fsyncMode)
	if err != nil {
		return nil, err
	}
	repl, err := replicationFromFlags()
	if err != nil {
		return nil, err
	}
	opts := repro.Options{
		Node: "soupsd", Units: *units, Consistency: mode, Workers: *workers,
		GroupCommit: *groupCommit, MaxAppendBatch: *maxBatch,
		DataDir: *dataDir, Fsync: sync, CheckpointEvery: *ckptEvery,
		FlushBytes: *flushBytes, CompactAfter: *compactAfter,
		CompactThrottle: *compactThrottle, DisableTiered: *noTiered,
		MaxQueueDepth: *maxDepth,
		Replication:   repl,
	}
	if *faultInjection {
		if *dataDir != "" {
			return nil, errors.New("-fault-injection is in-memory only; it cannot wrap a -data-dir store")
		}
		faultBackends = faultBackends[:0]
		backends := make([]storage.Backend, *units)
		for i := range backends {
			fb := storage.NewFaultBackend(storage.NewMemory())
			faultBackends = append(faultBackends, fb)
			backends[i] = fb
		}
		opts.UnitBackends = backends
	}
	return repro.Bootstrap(opts, repro.StandardTypes()...)
}

// faultBackends is populated by openKernel when -fault-injection is set;
// handleFault drives it. Written once at bootstrap before the listener
// starts (or under server.mu on promotion), read by the handler.
var faultBackends []*storage.FaultBackend

func main() {
	flag.Parse()
	s := &server{}
	switch *role {
	case "primary":
		k, err := openKernel()
		if err != nil {
			log.Fatalf("bootstrap: %v", err)
		}
		k.Start()
		s.kernel = k
	case "standby":
		sync, err := storage.ParseSyncMode(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		recv, err := openStandbyReceiver(*dataDir, *units, sync)
		if err != nil {
			log.Fatal(err)
		}
		s.standby = recv
	default:
		log.Fatalf("unknown -role %q (want primary or standby)", *role)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/entities/", s.handleEntity)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/history/", s.handleHistory)
	mux.HandleFunc("/warnings", s.handleWarnings)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/fault", s.handleFault)
	mux.HandleFunc("/backup", s.handleBackup)
	mux.HandleFunc("/restore", s.handleRestore)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/replicate", s.handleReplicate)
	mux.HandleFunc("/catchup", s.handleCatchup)
	mux.HandleFunc("/promote", s.handlePromote)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/status", s.handleStatus)

	srv := &http.Server{Addr: *addr, Handler: mux}
	// Durable shutdown: stop accepting traffic, then flush the write-ahead
	// logs before the process exits. A hard kill is also fine — that is what
	// recovery is for — but a polite signal should not rely on it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: flushing storage")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		s.shutdownNode()
	}()

	durable := "in-memory"
	if *dataDir != "" {
		durable = fmt.Sprintf("data-dir=%s fsync=%s", *dataDir, *fsyncMode)
	}
	if s.k() != nil {
		repl := "replication off"
		if rs := s.k().ReplicaStats(); rs.Enabled {
			repl = fmt.Sprintf("shipping to %d standbys ack=%s", rs.Standbys, rs.Mode)
		}
		log.Printf("soupsd primary listening on %s (units=%d consistency=%s groupcommit=%v %s, %s)",
			*addr, *units, *consistency, *groupCommit, durable, repl)
	} else {
		log.Printf("soupsd standby listening on %s (units=%d %s); POST /promote to take over", *addr, *units, durable)
	}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	s.closeNode()
}

// shutdownNode flushes whichever role is live at signal time.
func (s *server) shutdownNode() {
	s.mu.Lock()
	k, recv := s.kernel, s.standby
	s.mu.Unlock()
	if k != nil {
		if err := k.Flush(); err != nil {
			log.Printf("flush: %v", err)
		}
	}
	if recv != nil {
		if err := recv.close(); err != nil {
			log.Printf("closing standby receivers: %v", err)
		}
	}
}

// closeNode releases the kernel after the listener has drained.
func (s *server) closeNode() {
	s.mu.Lock()
	k := s.kernel
	s.mu.Unlock()
	if k != nil {
		k.Stop()
		k.Close()
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	k, recv := s.kernel, s.standby
	s.mu.Unlock()
	if recv != nil {
		fmt.Fprintln(w, "ok (standby)")
		return
	}
	// Background storage failures (a stopped automatic checkpoint, an
	// unlogged compaction mark) do not fail any request; the probe is
	// where they must surface.
	if err := k.StorageErr(); err != nil {
		http.Error(w, "degraded: "+err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}

// parseKey extracts "Type/ID" from a path like /entities/Type/ID.
func parseKey(path, prefix string) (repro.Key, error) {
	rest := strings.TrimPrefix(path, prefix)
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return repro.Key{}, fmt.Errorf("path must be %sType/ID", prefix)
	}
	return repro.Key{Type: parts[0], ID: parts[1]}, nil
}

func (s *server) handleEntity(w http.ResponseWriter, r *http.Request) {
	k := s.dataKernel(w)
	if k == nil {
		return
	}
	key, err := parseKey(r.URL.Path, "/entities/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		st, err := k.Read(key)
		if errors.Is(err, lsdb.ErrNotFound) {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, stateResponse{Key: key.String(), Fields: st.Fields, Tentative: st.Tentative, Deleted: st.Deleted})
	case http.MethodPost:
		var req opRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "malformed body: "+err.Error(), http.StatusBadRequest)
			return
		}
		var ops []repro.Op
		for field, value := range req.Set {
			ops = append(ops, repro.Set(field, normalise(value)).Described(req.Describe))
		}
		for field, delta := range req.Delta {
			ops = append(ops, repro.Delta(field, delta).Described(req.Describe))
		}
		if len(ops) == 0 {
			http.Error(w, "no operations", http.StatusBadRequest)
			return
		}
		res, err := k.Update(key, ops...)
		if shedResponse(w, err) {
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]interface{}{"txn": res.TxnID, "warnings": len(res.Warnings)})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// shedResponse maps backpressure and degraded-storage refusals onto 503 with
// a Retry-After hint, so load balancers and clients back off instead of
// treating shed writes as hard failures. Returns true if it wrote a response.
func shedResponse(w http.ResponseWriter, err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, queue.ErrOverloaded) || errors.Is(err, lsdb.ErrDegraded) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((*retryAfter).Seconds())))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return true
	}
	return false
}

type eventRequest struct {
	Name       string                 `json:"name"`
	Type       string                 `json:"type"`
	ID         string                 `json:"id"`
	Data       map[string]interface{} `json:"data,omitempty"`
	DeadlineMS int64                  `json:"deadline_ms,omitempty"`
}

// handleEvents submits one process-step event through admission control. A
// deadline_ms budget travels with the event: work still queued past it is
// dropped instead of executed.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k := s.dataKernel(w)
	if k == nil {
		return
	}
	var req eventRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Name == "" || req.Type == "" || req.ID == "" {
		http.Error(w, "name, type and id are required", http.StatusBadRequest)
		return
	}
	ev := repro.Event{
		Name:   req.Name,
		Entity: repro.Key{Type: req.Type, ID: req.ID},
		Data:   req.Data,
	}
	if req.DeadlineMS > 0 {
		ev.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	if err := k.Submit(ev); err != nil {
		if shedResponse(w, err) {
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"status": "accepted"})
}

// handleReadyz is the readiness probe: unlike /healthz (liveness) it answers
// 503 while any unit refuses writes, so rotations drain traffic from a node
// that is up but degraded.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	k, recv := s.kernel, s.standby
	s.mu.Unlock()
	if recv != nil {
		fmt.Fprintln(w, "ok (standby)")
		return
	}
	h := k.Health()
	if !h.WritesOK {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((*retryAfter).Seconds())))
		reason := "degraded"
		for _, u := range h.Units {
			if u.Degraded {
				reason = fmt.Sprintf("%s degraded (%s)", u.Unit, u.Reason)
				break
			}
		}
		http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
		return
	}
	if err := k.StorageErr(); err != nil {
		http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleStatus reports the node's degraded/overload/breaker posture as JSON
// (soupsctl status renders it).
func (s *server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	k, recv := s.kernel, s.standby
	s.mu.Unlock()
	if recv != nil {
		writeJSON(w, map[string]interface{}{"role": "standby"})
		return
	}
	out := map[string]interface{}{
		"role":   "primary",
		"health": k.Health(),
	}
	if rs := k.ReplicaStats(); rs.Enabled {
		out["replication"] = rs
	}
	writeJSON(w, out)
}

// normalise maps JSON numbers that are integral onto int64 so Int fields
// accept them.
func normalise(v interface{}) interface{} {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return int64(f)
	}
	return v
}

func (s *server) handleHistory(w http.ResponseWriter, r *http.Request) {
	k := s.dataKernel(w)
	if k == nil {
		return
	}
	key, err := parseKey(r.URL.Path, "/history/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h, err := k.History(key)
	if errors.Is(err, lsdb.ErrNotFound) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, h.Trace())
}

func (s *server) handleWarnings(w http.ResponseWriter, _ *http.Request) {
	k := s.dataKernel(w)
	if k == nil {
		return
	}
	var out []string
	for _, warning := range k.Warnings() {
		out = append(out, warning.String())
	}
	writeJSON(w, out)
}

// handleBackup streams a portable export of the whole node (the same codec
// soupsctl backup/restore move around).
func (s *server) handleBackup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k := s.dataKernel(w)
	if k == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := k.Export(w); err != nil {
		// Headers are gone; all we can do is log and cut the stream short.
		log.Printf("backup: %v", err)
	}
}

// handleRestore replays an export stream into this node. The node should be
// freshly started with the same unit count; durable nodes checkpoint the
// imported content before answering.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k := s.dataKernel(w)
	if k == nil {
		return
	}
	if err := k.Import(r.Body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]string{"status": "restored"})
}

// handleCheckpoint forces a storage checkpoint on every unit.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k := s.dataKernel(w)
	if k == nil {
		return
	}
	if err := k.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]string{"status": "checkpointed"})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.mu.Lock()
	k, recv := s.kernel, s.standby
	s.mu.Unlock()
	if recv != nil {
		s.replicationMetrics(w, nil, recv)
		return
	}
	fmt.Fprintln(w, k.Metrics().Dump())
	// Step-pool scheduling counters, aggregated across units (peak lane
	// depth is the maximum over units). See docs/OPERATIONS.md for how to
	// read them.
	ps := k.ProcessStats()
	fmt.Fprintf(w, "process.steps_executed %d\n", ps.StepsExecuted)
	fmt.Fprintf(w, "process.steps_failed %d\n", ps.StepsFailed)
	fmt.Fprintf(w, "process.retries %d\n", ps.Retries)
	fmt.Fprintf(w, "process.compensations %d\n", ps.Compensations)
	fmt.Fprintf(w, "process.collapsed %d\n", ps.Collapsed)
	fmt.Fprintf(w, "process.lane_steals %d\n", ps.LaneSteals)
	fmt.Fprintf(w, "process.peak_lane_depth %d\n", ps.PeakLaneDepth)
	fmt.Fprintf(w, "process.keyed_dequeues %d\n", ps.KeyedDequeues)
	fmt.Fprintf(w, "process.queue_depth %d\n", k.QueueDepth())
	fmt.Fprintf(w, "process.deadline_dropped %d\n", ps.DeadlineDropped)
	fmt.Fprintf(w, "process.lease_renewals %d\n", ps.LeaseRenewals)
	// Degraded-modes posture: admission-control sheds, units refusing writes
	// and write attempts bounced off read-only units.
	h := k.Health()
	fmt.Fprintf(w, "queue.shed %d\n", h.QueueShed)
	fmt.Fprintf(w, "degraded.units %d\n", h.DegradedUnits)
	fmt.Fprintf(w, "degraded.writes_refused %d\n", h.WritesRefused)
	// LSM tier posture: table layout, bloom effectiveness, flush/compaction
	// pipeline health (summed across units). Absent on in-memory kernels.
	if ts, fs, ok := k.TieredStats(); ok {
		fmt.Fprintf(w, "lsm.levels %d\n", ts.Levels)
		fmt.Fprintf(w, "lsm.tables %d\n", ts.Tables)
		fmt.Fprintf(w, "lsm.l0_tables %d\n", ts.L0Tables)
		fmt.Fprintf(w, "lsm.table_keys %d\n", ts.TableKeys)
		fmt.Fprintf(w, "lsm.table_bytes %d\n", ts.Bytes)
		fmt.Fprintf(w, "lsm.bloom_hits %d\n", ts.BloomHits)
		fmt.Fprintf(w, "lsm.bloom_skips %d\n", ts.BloomSkips)
		fmt.Fprintf(w, "lsm.bloom_false_positives %d\n", ts.BloomFalse)
		fmt.Fprintf(w, "lsm.compactions %d\n", ts.Compactions)
		fmt.Fprintf(w, "lsm.compaction_failures %d\n", ts.CompactFailures)
		fmt.Fprintf(w, "lsm.compaction_backlog %d\n", ts.CompactionBacklog)
		fmt.Fprintf(w, "lsm.wal_prune_skips %d\n", ts.WALPruneSkips)
		fmt.Fprintf(w, "lsm.wal_prune_errors %d\n", ts.WALPruneErrors)
		fmt.Fprintf(w, "lsm.flushes %d\n", fs.Flushes)
		fmt.Fprintf(w, "lsm.flush_failures %d\n", fs.Failures)
		fmt.Fprintf(w, "lsm.flush_stalls %d\n", fs.Stalls)
		fmt.Fprintf(w, "lsm.flush_pending_bytes %d\n", fs.PendingBytes)
		fmt.Fprintf(w, "lsm.cold_evicted %d\n", fs.Evicted)
		fmt.Fprintf(w, "lsm.cold_reads %d\n", fs.ColdReads)
	}
	s.replicationMetrics(w, k, nil)
}

// faultRequest is the POST /fault body: action "enospc" opens a retryable
// append-failure window on every unit's backend (appends bounds it, default
// unbounded until healed), action "heal" closes it.
type faultRequest struct {
	Action  string `json:"action"`
	Appends int    `json:"appends,omitempty"`
}

// handleFault drives the -fault-injection backends so an external benchmark
// driver (cmd/soupsbench) can align storage fault windows with its load
// phases. 404 unless the server was started with -fault-injection.
func (s *server) handleFault(w http.ResponseWriter, r *http.Request) {
	if len(faultBackends) == 0 {
		http.Error(w, "fault injection not enabled (start soupsd with -fault-injection)", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req faultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch strings.ToLower(req.Action) {
	case "enospc":
		n := req.Appends
		if n <= 0 {
			n = int(^uint(0) >> 1) // until healed
		}
		for _, fb := range faultBackends {
			fb.FailAppends(n)
		}
	case "heal":
		for _, fb := range faultBackends {
			fb.Heal()
		}
	default:
		http.Error(w, fmt.Sprintf("unknown action %q (want enospc or heal)", req.Action), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]string{"status": "ok", "action": strings.ToLower(req.Action)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
