// Command soupsd runs one kernel node behind an HTTP/JSON API, so the system
// can be exercised from outside Go.
//
// Endpoints:
//
//	GET  /entities/{Type}/{ID}            current subjective state
//	POST /entities/{Type}/{ID}            apply operations: {"set":{"f":v}, "delta":{"f":n}, "describe":"..."}
//	GET  /history/{Type}/{ID}             insert-only version trace
//	GET  /warnings                        managed constraint violations so far
//	GET  /metrics                         kernel metric dump (plain text)
//	GET  /healthz                         liveness probe
//
// Usage: soupsd [-addr :8080] [-units 4] [-consistency eventual|strong]
//
//	[-groupcommit] [-maxbatch 64]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"repro"
	"repro/internal/lsdb"
)

var (
	addr        = flag.String("addr", ":8080", "listen address")
	units       = flag.Int("units", 4, "number of serialization units")
	consistency = flag.String("consistency", "eventual", "eventual or strong")
	groupCommit = flag.Bool("groupcommit", false, "batch concurrent appends via per-shard group commit")
	maxBatch    = flag.Int("maxbatch", 0, "max appends per group-commit batch (0 = default 64)")
)

type server struct {
	kernel *repro.Kernel
}

type opRequest struct {
	Set      map[string]interface{} `json:"set,omitempty"`
	Delta    map[string]float64     `json:"delta,omitempty"`
	Describe string                 `json:"describe,omitempty"`
}

type stateResponse struct {
	Key       string                 `json:"key"`
	Fields    map[string]interface{} `json:"fields"`
	Tentative bool                   `json:"tentative,omitempty"`
	Deleted   bool                   `json:"deleted,omitempty"`
}

func main() {
	flag.Parse()
	mode := repro.EventualSOUPS
	if strings.HasPrefix(strings.ToLower(*consistency), "strong") {
		mode = repro.StrongSingleCopy
	}
	k, err := repro.Bootstrap(repro.Options{
		Node: "soupsd", Units: *units, Consistency: mode,
		GroupCommit: *groupCommit, MaxAppendBatch: *maxBatch,
	}, repro.StandardTypes()...)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer k.Close()
	k.Start()
	defer k.Stop()

	s := &server{kernel: k}
	mux := http.NewServeMux()
	mux.HandleFunc("/entities/", s.handleEntity)
	mux.HandleFunc("/history/", s.handleHistory)
	mux.HandleFunc("/warnings", s.handleWarnings)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })

	log.Printf("soupsd listening on %s (units=%d consistency=%s groupcommit=%v)", *addr, *units, mode, *groupCommit)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

// parseKey extracts "Type/ID" from a path like /entities/Type/ID.
func parseKey(path, prefix string) (repro.Key, error) {
	rest := strings.TrimPrefix(path, prefix)
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return repro.Key{}, fmt.Errorf("path must be %sType/ID", prefix)
	}
	return repro.Key{Type: parts[0], ID: parts[1]}, nil
}

func (s *server) handleEntity(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r.URL.Path, "/entities/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		st, err := s.kernel.Read(key)
		if errors.Is(err, lsdb.ErrNotFound) {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, stateResponse{Key: key.String(), Fields: st.Fields, Tentative: st.Tentative, Deleted: st.Deleted})
	case http.MethodPost:
		var req opRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "malformed body: "+err.Error(), http.StatusBadRequest)
			return
		}
		var ops []repro.Op
		for field, value := range req.Set {
			ops = append(ops, repro.Set(field, normalise(value)).Described(req.Describe))
		}
		for field, delta := range req.Delta {
			ops = append(ops, repro.Delta(field, delta).Described(req.Describe))
		}
		if len(ops) == 0 {
			http.Error(w, "no operations", http.StatusBadRequest)
			return
		}
		res, err := s.kernel.Update(key, ops...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]interface{}{"txn": res.TxnID, "warnings": len(res.Warnings)})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// normalise maps JSON numbers that are integral onto int64 so Int fields
// accept them.
func normalise(v interface{}) interface{} {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return int64(f)
	}
	return v
}

func (s *server) handleHistory(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r.URL.Path, "/history/")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h, err := s.kernel.History(key)
	if errors.Is(err, lsdb.ErrNotFound) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, h.Trace())
}

func (s *server) handleWarnings(w http.ResponseWriter, _ *http.Request) {
	var out []string
	for _, warning := range s.kernel.Warnings() {
		out = append(out, warning.String())
	}
	writeJSON(w, out)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, s.kernel.Metrics().Dump())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
