package main

// HTTP-level graceful degradation: overload and degraded-storage refusals
// surface as 503 + Retry-After, /readyz fails while a unit is read-only
// (while /healthz stays green — the node is alive, just shedding), and
// /status reports the posture soupsctl renders.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/storage"
)

// newTestServer builds a primary server over an in-memory kernel whose single
// unit sits on a fault-injecting backend, bypassing the flag-driven
// bootstrap.
func newTestServer(t *testing.T, maxQueueDepth int) (*server, *storage.FaultBackend) {
	t.Helper()
	fb := storage.NewFaultBackend(storage.NewMemory())
	k, err := repro.Bootstrap(repro.Options{
		Node:          "test",
		Units:         1,
		UnitBackends:  []storage.Backend{fb},
		MaxQueueDepth: maxQueueDepth,
		RearmAfter:    time.Hour, // recovery is driven explicitly by the test
	}, repro.StandardTypes()...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Close)
	return &server{kernel: k}, fb
}

func doJSON(t *testing.T, h http.HandlerFunc, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h(w, req)
	return w
}

func TestEventSubmitShedsWith503AndRetryAfter(t *testing.T) {
	s, _ := newTestServer(t, 1)
	first := doJSON(t, s.handleEvents, "POST", "/events", `{"name":"noop","type":"Account","id":"A1"}`)
	if first.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d %s, want 202", first.Code, first.Body)
	}
	second := doJSON(t, s.handleEvents, "POST", "/events", `{"name":"noop","type":"Account","id":"A1"}`)
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit past depth = %d %s, want 503", second.Code, second.Body)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Fatal("503 backpressure response is missing its Retry-After hint")
	}
	if !strings.Contains(second.Body.String(), "overloaded") {
		t.Fatalf("shed body %q does not name the overload", second.Body)
	}
}

func TestDegradedStorageWrites503ReadsServeAndReadyzFlips(t *testing.T) {
	s, fb := newTestServer(t, 0)
	seed := doJSON(t, s.handleEntity, "POST", "/entities/Account/A1", `{"delta":{"balance":10}}`)
	if seed.Code != http.StatusOK {
		t.Fatalf("seed write = %d %s", seed.Code, seed.Body)
	}
	if w := doJSON(t, s.handleReadyz, "GET", "/readyz", ""); w.Code != http.StatusOK {
		t.Fatalf("readyz while healthy = %d %s", w.Code, w.Body)
	}

	fb.FailAppends(1)
	w := doJSON(t, s.handleEntity, "POST", "/entities/Account/A1", `{"delta":{"balance":5}}`)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("degraded write = %d (Retry-After %q), want 503 with hint", w.Code, w.Header().Get("Retry-After"))
	}

	// Reads keep serving from the materialised cache, unaffected by the
	// refused write.
	r := doJSON(t, s.handleEntity, "GET", "/entities/Account/A1", "")
	if r.Code != http.StatusOK {
		t.Fatalf("degraded read = %d %s", r.Code, r.Body)
	}
	var st struct {
		Fields map[string]interface{} `json:"fields"`
	}
	if err := json.Unmarshal(r.Body.Bytes(), &st); err != nil || st.Fields["balance"] != 10.0 {
		t.Fatalf("degraded read body = %s (err %v), want balance 10", r.Body, err)
	}

	// Readiness fails and names the unit; liveness stays green.
	ready := doJSON(t, s.handleReadyz, "GET", "/readyz", "")
	if ready.Code != http.StatusServiceUnavailable || !strings.Contains(ready.Body.String(), "append-error") {
		t.Fatalf("readyz while degraded = %d %s, want 503 naming append-error", ready.Code, ready.Body)
	}
	if ready.Header().Get("Retry-After") == "" {
		t.Fatal("degraded readyz is missing its Retry-After hint")
	}
	if live := doJSON(t, s.handleHealthz, "GET", "/healthz", ""); live.Code != http.StatusOK {
		t.Fatalf("healthz while degraded = %d %s, want 200 (node is alive)", live.Code, live.Body)
	}

	// /status carries the machine-readable posture.
	var status struct {
		Role   string `json:"role"`
		Health struct {
			WritesOK      bool `json:"writes_ok"`
			DegradedUnits int  `json:"degraded_units"`
			Units         []struct {
				Reason string `json:"reason"`
			} `json:"units"`
			WritesRefused uint64 `json:"writes_refused"`
		} `json:"health"`
	}
	sw := doJSON(t, s.handleStatus, "GET", "/status", "")
	if err := json.Unmarshal(sw.Body.Bytes(), &status); err != nil {
		t.Fatalf("status JSON: %v in %s", err, sw.Body)
	}
	if status.Role != "primary" || status.Health.WritesOK || status.Health.DegradedUnits != 1 ||
		status.Health.Units[0].Reason != "append-error" {
		t.Fatalf("status = %+v, want primary with one append-error unit", status)
	}

	// Heal + repair restores readiness and the write path.
	fb.Heal()
	if err := s.k().RepairUnit(0, nil); err != nil {
		t.Fatalf("RepairUnit: %v", err)
	}
	if w := doJSON(t, s.handleReadyz, "GET", "/readyz", ""); w.Code != http.StatusOK {
		t.Fatalf("readyz after repair = %d %s", w.Code, w.Body)
	}
	if w := doJSON(t, s.handleEntity, "POST", "/entities/Account/A1", `{"delta":{"balance":5}}`); w.Code != http.StatusOK {
		t.Fatalf("write after repair = %d %s", w.Code, w.Body)
	}
}

func TestEventDeadlineTravelsAndDropsStaleWork(t *testing.T) {
	s, _ := newTestServer(t, 0)
	// A 1ms budget expires before Drain runs; the event must be dropped
	// unexecuted, not held forever.
	w := doJSON(t, s.handleEvents, "POST", "/events", `{"name":"core.apply","type":"Account","id":"A1","deadline_ms":1}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", w.Code, w.Body)
	}
	time.Sleep(5 * time.Millisecond)
	k := s.k()
	k.Drain()
	h := k.Health()
	if h.DeadlineDropped == 0 {
		t.Fatalf("health = %+v, want the expired event counted as deadline-dropped", h)
	}
	if h.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", h.QueueDepth)
	}
}
