// Command soupsbench is the end-to-end SLO harness (experiment E23): an
// open-loop, coordinated-omission-safe load generator that drives soupsd's
// real HTTP surface with internal/workload's business scenarios at a fixed
// arrival rate, scores every (phase, scenario, operation-class) cell with an
// HDR-style histogram, and audits that no acked write was lost across a
// fault window.
//
// A run moves through phases — warmup → steady → fault → recovery — and the
// fault window can inject:
//
//	-fault latency     client-link extra latency (+ optional loss), netsim vocabulary
//	-fault partition   client link blocked; every request fails unreachable
//	-fault enospc      storage append failures via soupsd -fault-injection + POST /fault
//	-fault kill9       SIGKILL the managed soupsd, restart it, measure recovery-time-objective
//
// soupsbench either targets a running server (-target) or spawns and manages
// its own (-soupsd PATH); kill9 requires the managed form plus -data-dir so
// the restarted server recovers from its WAL.
//
// With -json the scoreboard is written as BENCH_E23.json trajectory tables
// (same shape as cmd/benchharness). SLO bounds (-assert-p999, -assert-rto,
// -assert-convergence) turn violations into a non-zero exit for CI.
//
// Usage (bounded CI smoke):
//
//	soupsbench -soupsd ./bin/soupsd -entities 1000000 -rate 300 \
//	  -warmup 2s -steady 5s -fault-window 3s -recovery 4s \
//	  -fault partition -assert-convergence -assert-p999 2s -json BENCH_E23.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

var (
	target  = flag.String("target", "", "benchmark a running soupsd at this base URL (e.g. http://127.0.0.1:8080)")
	soupsd  = flag.String("soupsd", "", "spawn and manage this soupsd binary instead of targeting a running one")
	addr    = flag.String("addr", "127.0.0.1:8191", "listen address for the managed soupsd")
	dataDir = flag.String("data-dir", "", "data directory for the managed soupsd (required for -fault kill9)")
	fsync   = flag.String("fsync-mode", "", "fsync mode for the managed soupsd (kill9 defaults to always)")
	extra   = flag.String("soupsd-flags", "", "extra space-separated flags for the managed soupsd")

	scenarioList = flag.String("scenarios", "crm,banking,inventory,bookstore", "comma-separated scenario mix")
	entities     = flag.Uint64("entities", 1_000_000, "simulated entity key-space size per scenario (striding, no client state)")
	rate         = flag.Float64("rate", 1000, "offered arrivals per second (all scenarios combined)")
	arrivalFlag  = flag.String("arrival", "poisson", "inter-arrival process: poisson or uniform")
	seed         = flag.Int64("seed", 1, "seed for arrival gaps and scenario streams")

	warmup      = flag.Duration("warmup", 5*time.Second, "warmup phase duration (reported, not asserted)")
	steady      = flag.Duration("steady", 30*time.Second, "steady-state phase duration")
	faultWindow = flag.Duration("fault-window", 0, "fault phase duration (0 skips the fault and recovery phases)")
	recovery    = flag.Duration("recovery", 15*time.Second, "recovery phase duration after the fault heals")

	faultKind    = flag.String("fault", "none", "fault to inject during the fault window: none, latency, partition, enospc, kill9")
	faultLatency = flag.Duration("fault-latency", 50*time.Millisecond, "extra one-way latency for -fault latency")
	faultLoss    = flag.Float64("fault-loss", 0, "request loss fraction for -fault latency")

	maxOutstanding = flag.Int("max-outstanding", 512, "bound on in-flight requests (excess arrivals queue and are charged the wait)")
	reqTimeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
	checkEvery     = flag.Uint64("check-every", 64, "every Nth arrival probes the check entity for the acked-write audit (0 disables)")

	jsonOut     = flag.String("json", "", "write the scoreboard as BENCH_E23.json trajectory tables to this file")
	assertP999  = flag.Duration("assert-p999", 0, "fail unless steady-state submit p999 is below this bound")
	assertRTO   = flag.Duration("assert-rto", 0, "fail unless the measured kill9 recovery time is below this bound")
	assertConv  = flag.Bool("assert-convergence", false, "fail unless the acked-write audit passes after the final phase")
	assertRetry = flag.Bool("assert-retry-after", true, "fail if any 503 arrived without a Retry-After header")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatalf("soupsbench: %v", err)
	}
}

func run() error {
	arrival, err := loadgen.ParseArrival(*arrivalFlag)
	if err != nil {
		return err
	}
	scenarios, err := loadgen.Scenarios(*scenarioList, *entities, uint64(*seed))
	if err != nil {
		return err
	}
	if *target == "" && *soupsd == "" {
		return fmt.Errorf("need -target URL or -soupsd BINARY")
	}
	if *target != "" && *soupsd != "" {
		return fmt.Errorf("-target and -soupsd are mutually exclusive")
	}

	// Plain client for control traffic (readiness, /fault, /metrics, audit
	// read-back): control must bypass the injected client-side faults.
	plain := &http.Client{Timeout: 10 * time.Second, Transport: newPooledTransport()}

	var proc *managedSoupsd
	baseURL := *target
	if *soupsd != "" {
		baseURL = "http://" + *addr
		proc = &managedSoupsd{bin: *soupsd, args: managedArgs()}
		if err := proc.start(); err != nil {
			return err
		}
		defer proc.stop()
		if err := waitReady(plain, baseURL, 60*time.Second); err != nil {
			return fmt.Errorf("managed soupsd never became ready: %w", err)
		}
	}

	// Load client: pooled transport wrapped in the netsim-vocabulary fault
	// transport so latency/partition windows apply at the client edge.
	ft := loadgen.NewFaultTransport(newPooledTransport(), netsim.Config{Seed: *seed})
	loadClient := &http.Client{Transport: ft}

	fault, kill9, err := buildFault(ft, plain, proc, baseURL)
	if err != nil {
		return err
	}

	runner, err := loadgen.NewRunner(loadgen.Options{
		BaseURL:        baseURL,
		Client:         loadClient,
		Scenarios:      scenarios,
		Arrival:        arrival,
		Seed:           *seed,
		MaxOutstanding: *maxOutstanding,
		Timeout:        *reqTimeout,
		CheckEvery:     *checkEvery,
	})
	if err != nil {
		return err
	}

	var phases []loadgen.Phase
	if *warmup > 0 {
		phases = append(phases, loadgen.Phase{Name: "warmup", Duration: *warmup, Rate: *rate})
	}
	if *steady > 0 {
		phases = append(phases, loadgen.Phase{Name: "steady", Duration: *steady, Rate: *rate})
	}
	if *faultWindow > 0 && *faultKind != "none" {
		phases = append(phases, loadgen.Phase{Name: "fault", Duration: *faultWindow, Rate: *rate, Fault: fault})
		if *recovery > 0 {
			phases = append(phases, loadgen.Phase{Name: "recovery", Duration: *recovery, Rate: *rate})
		}
	}
	if len(phases) == 0 {
		return fmt.Errorf("no phases to run (all durations zero)")
	}

	before, berr := loadgen.ScrapeMetrics(context.Background(), plain, baseURL)
	if berr != nil {
		log.Printf("warning: pre-run /metrics scrape failed: %v", berr)
	}

	log.Printf("run: %s @ %.0f/s %s over %d entities, fault=%s", *scenarioList, *rate, arrival, *entities, *faultKind)
	results, err := runner.Run(context.Background(), phases)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var check loadgen.ProbeCheck
	if *checkEvery > 0 {
		check, err = runner.VerifyAckedWrites(ctx)
		if err != nil {
			return fmt.Errorf("acked-write audit read-back: %w", err)
		}
	}
	after, aerr := loadgen.ScrapeMetrics(ctx, plain, baseURL)
	if aerr != nil {
		log.Printf("warning: post-run /metrics scrape failed: %v", aerr)
	}

	tables, failures := report(results, check, kill9, before, after, berr == nil && aerr == nil)
	for _, tbl := range tables {
		fmt.Println(tbl.String())
	}
	if *jsonOut != "" {
		collected := make([]metrics.TableJSON, 0, len(tables))
		for _, tbl := range tables {
			collected = append(collected, metrics.TableAsJSON("E23", tbl))
		}
		if err := metrics.WriteTablesJSON(*jsonOut, collected); err != nil {
			return err
		}
		log.Printf("wrote %d table(s) to %s", len(collected), *jsonOut)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "SLO FAIL: "+f)
		}
		return fmt.Errorf("%d SLO assertion(s) failed", len(failures))
	}
	fmt.Println("all SLO assertions passed")
	return nil
}

// newPooledTransport builds a transport sized for open-loop fan-out: the
// default per-host idle cap of 2 would force connection churn at any real
// outstanding count.
func newPooledTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 1024
	t.MaxIdleConnsPerHost = 1024
	t.DialContext = (&net.Dialer{Timeout: 2 * time.Second}).DialContext
	return t
}

// managedArgs assembles the argv for the managed soupsd from the flags.
func managedArgs() []string {
	args := []string{"-addr", *addr}
	if *dataDir != "" {
		args = append(args, "-data-dir", *dataDir)
	}
	fs := *fsync
	if fs == "" && *faultKind == "kill9" {
		// The audit asserts acked writes survive SIGKILL; only per-commit
		// fsync makes that promise.
		fs = "always"
	}
	if fs != "" {
		args = append(args, "-fsync-mode", fs)
	}
	if *faultKind == "enospc" {
		args = append(args, "-fault-injection")
	}
	if *extra != "" {
		args = append(args, strings.Fields(*extra)...)
	}
	return args
}

// buildFault wires the fault window implementation for -fault. Returns the
// kill9 fault separately so the report can read its measured RTO.
func buildFault(ft *loadgen.FaultTransport, plain *http.Client, proc *managedSoupsd, baseURL string) (loadgen.Fault, *kill9Fault, error) {
	switch *faultKind {
	case "none":
		return nil, nil, nil
	case "latency":
		return &loadgen.TransportFault{Transport: ft,
			Fault: netsim.LinkFault{ExtraLatency: *faultLatency, Loss: *faultLoss}}, nil, nil
	case "partition":
		return &loadgen.TransportFault{Transport: ft, Fault: netsim.LinkFault{Block: true}}, nil, nil
	case "enospc":
		if proc == nil && *target == "" {
			return nil, nil, fmt.Errorf("-fault enospc needs a server")
		}
		return &enospcFault{client: plain, baseURL: baseURL}, nil, nil
	case "kill9":
		if proc == nil {
			return nil, nil, fmt.Errorf("-fault kill9 requires a managed soupsd (-soupsd)")
		}
		if *dataDir == "" {
			return nil, nil, fmt.Errorf("-fault kill9 requires -data-dir: a memory-only server cannot honour acked writes across SIGKILL")
		}
		k := &kill9Fault{proc: proc, client: plain, baseURL: baseURL}
		return k, k, nil
	default:
		return nil, nil, fmt.Errorf("unknown -fault %q (want none, latency, partition, enospc, kill9)", *faultKind)
	}
}

// enospcFault opens a storage append-failure window on every unit via the
// server's POST /fault endpoint (-fault-injection).
type enospcFault struct {
	client  *http.Client
	baseURL string
}

func (f *enospcFault) post(action string) error {
	resp, err := f.client.Post(f.baseURL+"/fault", "application/json",
		strings.NewReader(fmt.Sprintf(`{"action":%q}`, action)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /fault %s: status %d (is soupsd running with -fault-injection?)", action, resp.StatusCode)
	}
	return nil
}

func (f *enospcFault) Begin() error { return f.post("enospc") }
func (f *enospcFault) End() error   { return f.post("heal") }

// kill9Fault SIGKILLs the managed soupsd at the start of the fault window,
// restarts it immediately, and measures the recovery-time-objective: SIGKILL
// to the first 200 from /readyz. Load keeps being offered throughout, so the
// scoreboard shows the outage as errors and charged tail latency.
type kill9Fault struct {
	proc    *managedSoupsd
	client  *http.Client
	baseURL string

	killedAt time.Time
	ready    chan error
	rto      time.Duration
}

func (f *kill9Fault) Begin() error {
	f.killedAt = time.Now()
	if err := f.proc.kill(); err != nil {
		return err
	}
	if err := f.proc.start(); err != nil {
		return fmt.Errorf("restart after kill: %w", err)
	}
	f.ready = make(chan error, 1)
	go func() {
		err := waitReady(f.client, f.baseURL, 120*time.Second)
		if err == nil {
			f.rto = time.Since(f.killedAt)
		}
		f.ready <- err
	}()
	return nil
}

func (f *kill9Fault) End() error {
	if err := <-f.ready; err != nil {
		return fmt.Errorf("server never recovered from kill -9: %w", err)
	}
	return nil
}

// RTO returns the measured recovery time, or 0 if the fault never ran.
func (f *kill9Fault) RTO() time.Duration { return f.rto }

// managedSoupsd spawns and supervises the soupsd process under test.
type managedSoupsd struct {
	bin  string
	args []string
	cmd  *exec.Cmd
}

func (m *managedSoupsd) start() error {
	cmd := exec.Command(m.bin, m.args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", m.bin, err)
	}
	m.cmd = cmd
	return nil
}

func (m *managedSoupsd) kill() error {
	if m.cmd == nil || m.cmd.Process == nil {
		return fmt.Errorf("no managed process to kill")
	}
	if err := m.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = m.cmd.Wait()
	m.cmd = nil
	return nil
}

func (m *managedSoupsd) stop() {
	if m.cmd == nil || m.cmd.Process == nil {
		return
	}
	_ = m.cmd.Process.Kill()
	_ = m.cmd.Wait()
	m.cmd = nil
}

// waitReady polls /readyz until it answers 200.
func waitReady(client *http.Client, baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("readyz still %d after %v", resp.StatusCode, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// report reduces the run to the E23 trajectory tables and evaluates the SLO
// assertions. metricsOK gates the /metrics cross-check (scrapes can
// legitimately fail mid-partition, and counters reset across kill9).
func report(results []*loadgen.PhaseResult, check loadgen.ProbeCheck, kill9 *kill9Fault,
	before, after map[string]float64, metricsOK bool) ([]*metrics.Table, []string) {

	var failures []string

	lat := metrics.NewTable("E23 — SLO scoreboard: latency by phase, scenario, operation class",
		"phase", "scenario", "class", "ok", "shed", "not_found", "errors", "p50", "p99", "p999", "max")
	for _, res := range results {
		for _, row := range res.Rows() {
			lat.AddRow(row.Phase, row.Scenario, row.Class.String(),
				row.OK, row.Shed, row.NotFound, row.Errors,
				row.Latency.P50, row.Latency.P99, row.Latency.P999, row.Latency.Max)
		}
	}

	ph := metrics.NewTable("E23 — phases: offered load and pacing health",
		"phase", "rate", "offered", "wall", "achieved/s", "max_pacer_lag", "503_wo_retry_after")
	var clientSheds uint64
	for _, res := range results {
		_, shed, _, _ := res.Totals()
		clientSheds += shed
		achieved := 0.0
		if res.Wall > 0 {
			achieved = float64(res.Offered) / res.Wall.Seconds()
		}
		ph.AddRow(res.Name, res.Rate, res.Offered, res.Wall.Round(time.Millisecond), achieved, res.MaxLag, res.ShedNoRetryAfter)
		if *assertRetry && res.ShedNoRetryAfter > 0 {
			failures = append(failures, fmt.Sprintf("phase %s: %d sheds without Retry-After", res.Name, res.ShedNoRetryAfter))
		}
	}

	// Steady-state submit p999 is the headline SLO.
	for _, res := range results {
		if res.Name != "steady" {
			continue
		}
		sum := res.Merged(loadgen.Submit).Summary()
		if *assertP999 > 0 && sum.P999 > *assertP999 {
			failures = append(failures, fmt.Sprintf("steady submit p999 %v > bound %v", sum.P999, *assertP999))
		}
	}

	fa := metrics.NewTable("E23 — fault window and recovery",
		"fault", "window", "rto_kill_to_ready")
	rto := "-"
	if kill9 != nil && kill9.RTO() > 0 {
		rto = kill9.RTO().Round(time.Millisecond).String()
		if *assertRTO > 0 && kill9.RTO() > *assertRTO {
			failures = append(failures, fmt.Sprintf("recovery time %v > bound %v", kill9.RTO(), *assertRTO))
		}
	} else if *assertRTO > 0 {
		failures = append(failures, "recovery time asserted but no kill9 RTO was measured")
	}
	fa.AddRow(*faultKind, *faultWindow, rto)

	conv := metrics.NewTable("E23 — acked-write audit (zero lost acked writes)",
		"acked", "indeterminate", "failed", "final_balance", "converged")
	conv.AddRow(check.Acked, check.Indeterminate, check.Failed, check.Balance, check.OK)
	if *assertConv {
		if *checkEvery == 0 {
			failures = append(failures, "convergence asserted but -check-every is 0")
		} else if !check.OK {
			failures = append(failures, fmt.Sprintf(
				"acked-write audit failed: acked=%d balance=%g indeterminate=%d (acked writes lost or phantom applies)",
				check.Acked, check.Balance, check.Indeterminate))
		}
	}

	xc := metrics.NewTable("E23 — /metrics cross-check (server-side counters vs client observations)",
		"client_503s", "server_shed_delta", "consistent")
	if metricsOK && *faultKind != "kill9" {
		serverDelta := (after["queue.shed"] - before["queue.shed"]) +
			(after["degraded.writes_refused"] - before["degraded.writes_refused"])
		// The server may shed requests from other clients too, so the client
		// count is a lower bound on the server's delta.
		consistent := float64(clientSheds) <= serverDelta+0.5
		xc.AddRow(clientSheds, serverDelta, consistent)
		if !consistent {
			failures = append(failures, fmt.Sprintf(
				"client saw %d 503s but server counters only moved by %.0f", clientSheds, serverDelta))
		}
	} else {
		xc.AddRow(clientSheds, "-", "skipped (kill9 resets counters or scrape failed)")
	}

	return []*metrics.Table{lat, ph, fa, conv, xc}, failures
}
