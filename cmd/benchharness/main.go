// Command benchharness runs scaled-down versions of the experiments
// (E1..E22 in DESIGN.md / EXPERIMENTS.md) and prints one plain-text table per
// experiment, the way the paper's evaluation section would have reported
// them. The authoritative, parameter-swept versions are the testing.B
// benchmarks in bench_test.go; this command exists to regenerate the tables
// quickly without the Go test machinery.
//
// With -json PATH the same tables are additionally written as a JSON array
// of {experiment, title, columns, rows} objects — the BENCH_*.json
// trajectory files the Makefile bench targets archive so successive PRs can
// diff their numbers.
//
// Usage:
//
//	benchharness [-ops N] [-only E5] [-json BENCH_E5.json]
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/locks"
	"repro/internal/lsdb"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/netsim"
	"repro/internal/process"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

var (
	ops     = flag.Int("ops", 2000, "operations per experiment configuration")
	only    = flag.String("only", "", "run only the named experiment (e.g. E5)")
	jsonOut = flag.String("json", "", "also write the tables as JSON to this file")
)

func main() {
	flag.Parse()
	experiments := []struct {
		name string
		run  func(int) *metrics.Table
	}{
		{"E1", e1}, {"E2", e2}, {"E3", e3}, {"E4", e4}, {"E5", e5}, {"E6", e6},
		{"E7", e7}, {"E8", e8}, {"E9", e9}, {"E10", e10}, {"E11", e11}, {"E12", e12},
		{"E13", e13}, {"E14", e14}, {"E15", e15}, {"E16", e16}, {"E17", e17},
		{"E18", e18}, {"E19", e19}, {"E22", e22},
	}
	var collected []metrics.TableJSON
	for _, ex := range experiments {
		if *only != "" && !strings.EqualFold(*only, ex.name) {
			continue
		}
		tbl := ex.run(*ops)
		fmt.Println(tbl.String())
		if *jsonOut != "" {
			collected = append(collected, metrics.TableAsJSON(ex.name, tbl))
		}
	}
	if *jsonOut != "" {
		if err := metrics.WriteTablesJSON(*jsonOut, collected); err != nil {
			log.Fatalf("write %s: %v", *jsonOut, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d table(s) to %s\n", len(collected), *jsonOut)
	}
}

func mustKernel(opts repro.Options) *repro.Kernel {
	k, err := repro.Bootstrap(opts, repro.StandardTypes()...)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	return k
}

func opsPerSec(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// E1: hot aggregate, synchronous vs deferred maintenance.
func e1(n int) *metrics.Table {
	tbl := metrics.NewTable("E1 — deferred vs synchronous hot aggregate (principle 2.3)",
		"mode", "writers", "ops/sec", "aggregate staleness after load")
	for _, deferred := range []bool{false, true} {
		mode := "sync"
		if deferred {
			mode = "deferred"
		}
		d := deferred
		k := mustKernel(repro.Options{Node: "e1", DeferredAggregates: &d})
		k.DefineSumAggregate("revenue", "Order", "total", "")
		const writers = 8
		var wg sync.WaitGroup
		var seq atomic.Int64
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for int(seq.Add(1)) <= n {
					i := seq.Load()
					k.Update(repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i)}, repro.Set("total", 10.0))
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		tbl.AddRow(mode, writers, opsPerSec(n, elapsed), k.AggregateStaleness())
		k.Close()
	}
	return tbl
}

// E2: focused transactions + queued propagation vs two-phase commit.
func e2(n int) *metrics.Table {
	tbl := metrics.NewTable("E2 — SOUPS vs 2PC across 4 serialization units (principles 2.5/2.6)",
		"mode", "cross-unit ratio", "ops/sec", "p99 latency")
	for _, cross := range []float64{0, 0.5, 1.0} {
		for _, mode := range []repro.Consistency{repro.EventualSOUPS, repro.StrongSingleCopy} {
			k := mustKernel(repro.Options{Node: "e2", Units: 4, Consistency: mode})
			gen := workload.NewTransfers(42, 500, cross)
			hist := metrics.NewHistogram()
			start := time.Now()
			for i := 0; i < n; i++ {
				tr := gen.Next()
				t0 := time.Now()
				if err := k.TransactMulti([]repro.MultiWrite{
					{Key: tr.From, Ops: []repro.Op{repro.Delta("balance", -tr.Amount)}},
					{Key: tr.To, Ops: []repro.Op{repro.Delta("balance", tr.Amount)}},
				}); err != nil {
					log.Fatalf("E2: %v", err)
				}
				hist.Record(time.Since(t0))
			}
			elapsed := time.Since(start)
			if mode == repro.EventualSOUPS {
				k.Drain()
			}
			name := "soups"
			if mode == repro.StrongSingleCopy {
				name = "2pc"
			}
			tbl.AddRow(name, fmt.Sprintf("%.0f%%", cross*100), opsPerSec(n, elapsed), hist.Quantile(0.99))
			k.Close()
		}
	}
	return tbl
}

// E3: concurrency-control disciplines under Zipfian contention.
func e3(n int) *metrics.Table {
	tbl := metrics.NewTable("E3 — solipsistic vs optimistic vs pessimistic CC (principle 2.10)",
		"mode", "ops/sec", "aborts", "lock timeouts")
	for _, mode := range []txn.Mode{txn.Solipsistic, txn.Optimistic, txn.Pessimistic} {
		db := lsdb.Open(lsdb.Options{Node: "e3", SnapshotEvery: 64, Validation: entity.Managed})
		db.RegisterType(workload.AccountType())
		mgr := txn.NewManager(db, nil, nil, txn.Options{Node: "e3", LockTimeout: 20 * time.Millisecond})
		zipf := workload.NewZipf(7, 32, 1.3)
		var wg sync.WaitGroup
		var aborted atomic.Int64
		per := n / 8
		start := time.Now()
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					key := repro.Key{Type: "Account", ID: fmt.Sprintf("a%d", zipf.Next())}
					if _, err := mgr.Run(mode, nil, 0, func(t *txn.Txn) error {
						if _, err := t.Read(key); err != nil {
							return err
						}
						return t.Update(key, repro.Delta("balance", 1))
					}); err != nil {
						aborted.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		tbl.AddRow(mode.String(), opsPerSec(8*per, elapsed), aborted.Load(), mgr.Stats().LockTimeouts)
	}
	return tbl
}

// E4: conflict resolution strategies on concurrent replica updates.
func e4(n int) *metrics.Table {
	tbl := metrics.NewTable("E4 — conflict resolution: state LWW vs operation replay (principles 2.7/2.8)",
		"strategy", "merges", "lost operations", "final value correct")
	typ := workload.AccountType()
	key := repro.Key{Type: "Account", ID: "A"}
	for _, strategy := range []entity.MergeStrategy{entity.LastWriterWins, entity.OperationReplay} {
		base := entity.NewState(key)
		lost, correct := 0, 0
		for i := 0; i < n; i++ {
			mk := func(node string, amt float64, w int64) *entity.Version {
				ops := []repro.Op{repro.Delta("balance", amt)}
				st, _, _ := entity.Apply(typ, base, ops, entity.Managed)
				return &entity.Version{Key: key, Ops: ops, State: st, Stamp: clock.Timestamp{WallNanos: w, Node: clock.NodeID(node)}}
			}
			a := mk("r1", 10, int64(2*i+1))
			b := mk("r2", 7, int64(2*i+2))
			res, err := entity.Merge(typ, base, a, b, strategy)
			if err != nil {
				log.Fatalf("E4: %v", err)
			}
			lost += res.LostOps
			if res.State.Float("balance") == 17 {
				correct++
			}
		}
		tbl.AddRow(strategy.String(), n, lost, fmt.Sprintf("%d/%d", correct, n))
	}
	return tbl
}

// E5: availability during a network partition.
func e5(n int) *metrics.Table {
	tbl := metrics.NewTable("E5 — availability under partition (principle 2.11 / CAP)",
		"replication", "side", "writes attempted", "success ratio")
	for _, mode := range []replica.Mode{replica.Quorum, replica.Eventual} {
		cluster, err := replica.NewCluster(3, mode, netsim.Config{UnreachableDelay: 100 * time.Microsecond}, workload.AccountType())
		if err != nil {
			log.Fatalf("E5: %v", err)
		}
		cluster.Network().Partition([]clock.NodeID{"r0"}, []clock.NodeID{"r1", "r2"})
		for side, idx := range map[string]int{"minority (r0)": 0, "majority (r1)": 1} {
			rep, _ := cluster.Replica(idx)
			ok := 0
			attempts := n / 10
			for i := 0; i < attempts; i++ {
				if _, err := rep.Write(repro.Key{Type: "Account", ID: "A"}, []repro.Op{repro.Delta("balance", 1)}, ""); err == nil {
					ok++
				}
			}
			tbl.AddRow(mode.String(), side, attempts, float64(ok)/float64(attempts))
		}
		cluster.Stop()
	}
	return tbl
}

// E6: apology rate vs strong rejection for the overbooked bookstore.
func e6(int) *metrics.Table {
	tbl := metrics.NewTable("E6 — tentative orders + apologies vs synchronous stock checks (principle 2.9)",
		"mode", "stock", "demand", "confirmed at entry", "apologies", "rejected at entry", "mean entry latency")
	const stock, demand = 5, 9
	// Eventual / apology-oriented.
	{
		k := mustKernel(repro.Options{Node: "e6"})
		key := repro.Key{Type: "Book", ID: "bestseller"}
		k.Update(key, repro.Set("stock", stock))
		hist := metrics.NewHistogram()
		for _, o := range workload.NewBookstore(stock, demand).Orders() {
			t0 := time.Now()
			if _, err := k.UpdateTentative(key, o.Customer, "order-confirmation", 1, repro.Delta("stock", -1)); err != nil {
				log.Fatalf("E6: %v", err)
			}
			hist.Record(time.Since(t0))
		}
		_, apologies, _ := k.ResolveOverbooking(key, stock, "out of stock", "refund")
		tbl.AddRow("eventual+apology", stock, demand, demand, len(apologies), 0, hist.Mean())
		k.Close()
	}
	// Strong / reject at entry.
	{
		k := mustKernel(repro.Options{Node: "e6s", Consistency: repro.StrongSingleCopy})
		key := repro.Key{Type: "Book", ID: "bestseller"}
		k.Update(key, repro.Set("stock", stock))
		hist := metrics.NewHistogram()
		rejected := 0
		for range workload.NewBookstore(stock, demand).Orders() {
			t0 := time.Now()
			_, err := k.Transact(key, func(t *txn.Txn) error {
				st, err := t.Read(key)
				if err != nil {
					return err
				}
				if st.Int("stock") < 1 {
					return errors.New("out of stock")
				}
				return t.Update(key, repro.Delta("stock", -1))
			})
			hist.Record(time.Since(t0))
			if err != nil {
				rejected++
			}
		}
		tbl.AddRow("strong reject", stock, demand, demand-rejected, 0, rejected, hist.Mean())
		k.Close()
	}
	return tbl
}

// E7: convergence time vs replica count under message loss.
func e7(int) *metrics.Table {
	tbl := metrics.NewTable("E7 — eventual convergence via anti-entropy (loss rate 30%)",
		"replicas", "writes", "sync rounds to converge", "converged value correct")
	for _, replicas := range []int{3, 5, 7} {
		cluster, err := replica.NewCluster(replicas, replica.Eventual, netsim.Config{LossRate: 0.3, Seed: 11}, workload.AccountType())
		if err != nil {
			log.Fatalf("E7: %v", err)
		}
		key := repro.Key{Type: "Account", ID: "A"}
		for i := 0; i < replicas; i++ {
			rep, _ := cluster.Replica(i)
			rep.Write(key, []repro.Op{repro.Delta("balance", 1)}, "")
		}
		rounds := 0
		for {
			rounds++
			cluster.SyncRound()
			done := true
			for i := 0; i < replicas; i++ {
				rep, _ := cluster.Replica(i)
				st, err := rep.ReadResolved(key)
				if err != nil || st.Float("balance") != float64(replicas) {
					done = false
					break
				}
			}
			if done || rounds > 1000 {
				break
			}
		}
		tbl.AddRow(replicas, replicas, rounds, rounds <= 1000)
		cluster.Stop()
	}
	return tbl
}

// E8: step collapsing.
func e8(n int) *metrics.Table {
	tbl := metrics.NewTable("E8 — vertical step collapsing (section 3.1)",
		"mode", "pipelines", "steps executed", "collapsed inline", "pipelines/sec")
	for _, collapse := range []bool{false, true} {
		k := mustKernel(repro.Options{Node: "e8", CollapseVertical: collapse})
		def := repro.NewProcess("pipeline")
		def.Step("a", func(ctx *repro.StepContext) error {
			if err := ctx.Txn.Update(ctx.Event.Entity, repro.Set("status", "A")); err != nil {
				return err
			}
			ctx.Emit(repro.Event{Name: "b", Entity: repro.Key{Type: "Inventory", ID: "widget"}})
			return nil
		})
		def.Step("b", func(ctx *repro.StepContext) error {
			return ctx.Txn.Update(ctx.Event.Entity, repro.Delta("onhand", -1))
		})
		k.DefineProcess(def)
		pipelines := n / 4
		start := time.Now()
		for i := 0; i < pipelines; i++ {
			k.Submit(repro.Event{Name: "a", Entity: repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i)}, TxnID: fmt.Sprintf("p%d", i)})
			k.Drain()
		}
		elapsed := time.Since(start)
		name := "queued"
		if collapse {
			name = "vertical-collapse"
		}
		stats := k.ProcessStats()
		tbl.AddRow(name, pipelines, stats.StepsExecuted, stats.Collapsed, opsPerSec(pipelines, elapsed))
		k.Close()
	}
	return tbl
}

// E9: rollup read cost vs log length, with and without snapshots. The
// materialised state cache is disabled so the rollup itself is measured;
// E13 measures the cache against this baseline.
func e9(n int) *metrics.Table {
	tbl := metrics.NewTable("E9 — LSDB rollup read cost (section 3.1)",
		"log records", "snapshots", "reads", "mean read latency")
	for _, logLen := range []int{100, 10000} {
		for _, snap := range []bool{false, true} {
			every := 0
			if snap {
				every = 256
			}
			db := lsdb.Open(lsdb.Options{Node: "e9", SnapshotEvery: every, Validation: entity.Managed, DisableStateCache: true})
			db.RegisterType(workload.AccountType())
			key := repro.Key{Type: "Account", ID: "A"}
			for i := 0; i < logLen; i++ {
				db.Append(key, []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(i + 1), Node: "e9"}, "e9", "")
			}
			hist := metrics.NewHistogram()
			reads := n / 4
			for i := 0; i < reads; i++ {
				t0 := time.Now()
				db.Current(key)
				hist.Record(time.Since(t0))
			}
			tbl.AddRow(logLen, snap, reads, hist.Mean())
		}
	}
	return tbl
}

// E13: materialised current-state reads vs log rollup at long histories.
func e13(n int) *metrics.Table {
	tbl := metrics.NewTable("E13 — materialised state cache vs rollup reads (section 3.1)",
		"history length", "read path", "reads", "mean read latency")
	for _, history := range []int{100, 1000} {
		for _, cachedReads := range []bool{false, true} {
			db := lsdb.Open(lsdb.Options{Node: "e13", Validation: entity.Managed, DisableStateCache: !cachedReads})
			db.RegisterType(workload.AccountType())
			key := repro.Key{Type: "Account", ID: "A"}
			for i := 0; i < history; i++ {
				db.Append(key, []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(i + 1), Node: "e13"}, "e13", "")
			}
			hist := metrics.NewHistogram()
			reads := n / 4
			for i := 0; i < reads; i++ {
				t0 := time.Now()
				db.Current(key)
				hist.Record(time.Since(t0))
			}
			name := "rollup"
			if cachedReads {
				name = "cached"
			}
			tbl.AddRow(history, name, reads, hist.Mean())
		}
	}
	return tbl
}

// E14: mixed append/scan workload on one store, one shard vs eight.
func e14(n int) *metrics.Table {
	tbl := metrics.NewTable("E14 — lock-striped shards under a mixed append/scan load (section 3.1)",
		"shards", "workers", "appends", "scans", "ops/sec")
	const entities, workers = 256, 8
	for _, shards := range []int{1, 8} {
		db := lsdb.Open(lsdb.Options{Node: "e14", Validation: entity.Managed, Shards: shards})
		db.RegisterType(workload.AccountType())
		keys := make([]repro.Key, entities)
		for i := range keys {
			keys[i] = repro.Key{Type: "Account", ID: fmt.Sprintf("acct-%d", i)}
			db.Append(keys[i], []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(i + 1), Node: "e14"}, "e14", "")
		}
		var wg sync.WaitGroup
		var appends, scans atomic.Int64
		per := n / workers
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if i%16 == 0 {
						db.Scan("Account", func(*entity.State) bool { return true })
						scans.Add(1)
						continue
					}
					key := keys[(w*per+i)%entities]
					db.Append(key, []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(entities + w*per + i), Node: "e14"}, "e14", "")
					appends.Add(1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		tbl.AddRow(shards, workers, appends.Load(), scans.Load(), opsPerSec(workers*per, elapsed))
	}
	return tbl
}

// seedWideOrder builds one Order with width line items.
func seedWideOrder(db *lsdb.DB, key repro.Key, width int) {
	db.Append(key, []repro.Op{repro.Set("status", "OPEN")}, clock.Timestamp{WallNanos: 1, Node: "seed"}, "seed", "")
	for i := 0; i < width; i++ {
		db.Append(key, []repro.Op{repro.InsertChild("lineitems", fmt.Sprintf("L%d", i), repro.Fields{"product": "widget", "qty": 1, "price": 9.5})},
			clock.Timestamp{WallNanos: int64(i + 2), Node: "seed"}, "seed", "")
	}
}

// E15: copy-on-write states vs the deep-clone baseline on wide entities.
func e15(n int) *metrics.Table {
	tbl := metrics.NewTable("E15 — copy-on-write states vs deep clones on wide entities (section 3.1)",
		"children", "state model", "mean read latency", "mean write latency")
	for _, width := range []int{10, 100, 1000} {
		for _, deep := range []bool{true, false} {
			db := lsdb.Open(lsdb.Options{Node: "e15", Validation: entity.Managed, DeepCloneStates: deep})
			db.RegisterType(workload.OrderType())
			key := repro.Key{Type: "Order", ID: "wide"}
			seedWideOrder(db, key, width)
			reads := metrics.NewHistogram()
			ops := n / 4
			for i := 0; i < ops; i++ {
				t0 := time.Now()
				db.Current(key)
				reads.Record(time.Since(t0))
			}
			writes := metrics.NewHistogram()
			for i := 0; i < ops; i++ {
				op := []repro.Op{entity.DeltaChildField("lineitems", fmt.Sprintf("L%d", i%width), "qty", 1)}
				t0 := time.Now()
				db.Append(key, op, clock.Timestamp{WallNanos: int64(width + i + 2), Node: "e15"}, "e15", "")
				writes.Record(time.Since(t0))
			}
			name := "copy-on-write"
			if deep {
				name = "deep-clone"
			}
			tbl.AddRow(width, name, reads.Mean(), writes.Mean())
		}
	}
	return tbl
}

// E16: scan throughput over wide entities, COW vs deep-clone reads.
func e16(n int) *metrics.Table {
	tbl := metrics.NewTable("E16 — scans over wide entities: copy-on-write vs deep clones (section 3.1)",
		"entities", "children each", "state model", "scans", "mean scan latency")
	const entities, width = 32, 256
	for _, deep := range []bool{true, false} {
		db := lsdb.Open(lsdb.Options{Node: "e16", Validation: entity.Managed, DeepCloneStates: deep})
		db.RegisterType(workload.OrderType())
		for e := 0; e < entities; e++ {
			seedWideOrder(db, repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", e)}, width)
		}
		hist := metrics.NewHistogram()
		scans := n / 100
		if scans == 0 {
			scans = 1
		}
		for i := 0; i < scans; i++ {
			t0 := time.Now()
			db.Scan("Order", func(st *entity.State) bool {
				for _, row := range st.LiveChildren("lineitems") {
					_ = row.Fields["qty"]
				}
				return true
			})
			hist.Record(time.Since(t0))
		}
		name := "copy-on-write"
		if deep {
			name = "deep-clone"
		}
		tbl.AddRow(entities, width, name, scans, hist.Mean())
	}
	return tbl
}

// E17: group-commit append batching — per-append locking vs batched commits,
// in-memory and with a real per-commit-cycle fsync (the cost group commit
// amortises).
func e17(n int) *metrics.Table {
	tbl := metrics.NewTable("E17 — group-commit append batching under concurrent writers (section 3.1)",
		"sync", "writers", "commit mode", "appends", "ops/sec")
	const hotKeys = 16
	for _, syncMode := range []string{"mem", "fsync"} {
		for _, writers := range []int{1, 4, 8} {
			for _, batched := range []bool{false, true} {
				// Raise GOMAXPROCS so "writers" means truly concurrent
				// writers even on a small box; restored after this row so
				// later low-writer rows measure at their own setting.
				prevProcs := runtime.GOMAXPROCS(0)
				if prevProcs < writers {
					runtime.GOMAXPROCS(writers)
				}
				opts := lsdb.Options{Node: "e17", Validation: entity.Managed, Shards: 1, GroupCommit: batched}
				var wal *os.File
				if syncMode == "fsync" {
					var err error
					wal, err = os.CreateTemp("", "e17-wal")
					if err != nil {
						log.Fatalf("E17: %v", err)
					}
					opts.CommitHook = func(recs []lsdb.Record) {
						for _, rec := range recs {
							fmt.Fprintf(wal, "%d %s %d\n", rec.LSN, rec.Key.ID, len(rec.Ops))
						}
						wal.Sync()
					}
				}
				db := lsdb.Open(opts)
				db.RegisterType(workload.AccountType())
				keys := make([]repro.Key, hotKeys)
				for i := range keys {
					keys[i] = repro.Key{Type: "Account", ID: fmt.Sprintf("acct-%d", i)}
				}
				total := int64(n)
				if syncMode == "fsync" {
					total = int64(n / 4)
				}
				var seq atomic.Int64
				var wg sync.WaitGroup
				start := time.Now()
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := seq.Add(1)
							if i > total {
								return
							}
							db.Append(keys[int(i)%hotKeys], []repro.Op{repro.Delta("balance", 1)},
								clock.Timestamp{WallNanos: i, Node: "e17"}, "e17", "")
						}
					}()
				}
				wg.Wait()
				elapsed := time.Since(start)
				mode := "per-append"
				if batched {
					mode = "batched"
				}
				tbl.AddRow(syncMode, writers, mode, total, opsPerSec(int(total), elapsed))
				runtime.GOMAXPROCS(prevProcs)
				if wal != nil {
					wal.Close()
					os.Remove(wal.Name())
				}
			}
		}
	}
	return tbl
}

// E18: durable storage — JSON-stream load vs checkpointed WAL recovery, and
// the append overhead the write-ahead log adds (mem vs WAL vs WAL+fsync).
func e18(n int) *metrics.Table {
	tbl := metrics.NewTable("E18 — storage engine: recovery time and append overhead (section 3.1)",
		"phase", "mode", "records", "elapsed", "ops/sec")
	types := func(db *lsdb.DB) {
		db.RegisterType(workload.AccountType())
		db.RegisterType(workload.OrderType())
	}
	seed := func(db *lsdb.DB, records int) {
		for i := 0; i < records; i++ {
			if i%8 == 0 {
				db.Append(repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i%32)},
					[]repro.Op{repro.InsertChild("lineitems", fmt.Sprintf("L%d", i), repro.Fields{"product": "widget", "qty": int64(i % 7)})},
					clock.Timestamp{WallNanos: int64(i + 1), Node: "e18"}, "e18", fmt.Sprintf("t%d", i))
			} else {
				db.Append(repro.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%64)},
					[]repro.Op{repro.Delta("balance", 1)},
					clock.Timestamp{WallNanos: int64(i + 1), Node: "e18"}, "e18", "")
			}
		}
	}

	// Recovery: JSON-stream load vs WAL replay vs checkpointed recovery of a
	// summarised store.
	records := 4 * n
	for _, mode := range []string{"json", "wal", "ckpt-compacted"} {
		var recover func() uint64
		switch mode {
		case "json":
			src := lsdb.Open(lsdb.Options{Node: "e18"})
			types(src)
			seed(src, records)
			var stream bytes.Buffer
			if err := src.Save(&stream); err != nil {
				log.Fatalf("E18: %v", err)
			}
			raw := stream.Bytes()
			recover = func() uint64 {
				dst := lsdb.Open(lsdb.Options{Node: "e18"})
				types(dst)
				if err := dst.Load(bytes.NewReader(raw)); err != nil {
					log.Fatalf("E18: %v", err)
				}
				return dst.HeadLSN()
			}
		default:
			dir, err := os.MkdirTemp("", "e18-"+mode)
			if err != nil {
				log.Fatalf("E18: %v", err)
			}
			defer os.RemoveAll(dir)
			wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
			if err != nil {
				log.Fatalf("E18: %v", err)
			}
			src := lsdb.Open(lsdb.Options{Node: "e18", Backend: wal})
			types(src)
			seed(src, records)
			if mode == "ckpt-compacted" {
				src.Compact(src.HeadLSN())
				if err := src.Checkpoint(); err != nil {
					log.Fatalf("E18: %v", err)
				}
			}
			src.Close()
			recover = func() uint64 {
				w, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
				if err != nil {
					log.Fatalf("E18: %v", err)
				}
				rec, err := lsdb.Recover(lsdb.Options{Node: "e18", Backend: w},
					workload.AccountType(), workload.OrderType())
				if err != nil {
					log.Fatalf("E18: %v", err)
				}
				head := rec.HeadLSN()
				rec.Close()
				return head
			}
		}
		start := time.Now()
		const iters = 3
		for i := 0; i < iters; i++ {
			if head := recover(); head != uint64(records) {
				log.Fatalf("E18: recovered head %d, want %d", head, records)
			}
		}
		elapsed := time.Since(start) / iters
		tbl.AddRow("recover", mode, records, elapsed, opsPerSec(records, elapsed))
	}

	// Append overhead: what the durable log costs per write.
	for _, mode := range []string{"mem", "wal", "wal-fsync"} {
		opts := lsdb.Options{Node: "e18", Validation: entity.Managed}
		if mode != "mem" {
			sync := storage.SyncOS
			if mode == "wal-fsync" {
				sync = storage.SyncAlways
			}
			dir, err := os.MkdirTemp("", "e18-append")
			if err != nil {
				log.Fatalf("E18: %v", err)
			}
			defer os.RemoveAll(dir)
			wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir, Sync: sync})
			if err != nil {
				log.Fatalf("E18: %v", err)
			}
			opts.Backend = wal
		}
		db := lsdb.Open(opts)
		db.RegisterType(workload.AccountType())
		total := n
		if mode == "wal-fsync" {
			total = n / 4
		}
		start := time.Now()
		for i := 0; i < total; i++ {
			db.Append(repro.Key{Type: "Account", ID: "hot"}, []repro.Op{repro.Delta("balance", 1)},
				clock.Timestamp{WallNanos: int64(i + 1), Node: "e18"}, "e18", "")
		}
		elapsed := time.Since(start)
		db.Close()
		tbl.AddRow("append", mode, total, elapsed, opsPerSec(total, elapsed))
	}
	return tbl
}

// E19: the work-stealing step pool across workers × entity skew. Steps
// carry a modeled 100µs service time, so throughput is step-latency-bound:
// uniform keys scale with workers, a single hot entity serialises by
// contract and must stay flat.
func e19(n int) *metrics.Table {
	tbl := metrics.NewTable("E19 — work-stealing step pool: workers × entity skew (principles 2.5/2.6)",
		"skew", "workers", "steps", "ops/sec", "lane steals", "peak lane depth")
	const stepLatency = 100 * time.Microsecond
	const entities = 256
	for _, skew := range []string{"uniform", "zipfian", "single-hot"} {
		for _, workers := range []int{1, 2, 4, 8} {
			db := lsdb.Open(lsdb.Options{Node: "e19", Validation: entity.Managed, Shards: 8})
			db.RegisterType(workload.AccountType())
			mgr := txn.NewManager(db, nil, nil, txn.Options{Node: "e19"})
			q := queue.New("e19", queue.Options{VisibilityTimeout: 10 * time.Minute})
			e := process.NewEngine(mgr, q, process.Options{Workers: workers})
			def := process.NewDefinition("e19")
			def.Step("e19.step", func(ctx *process.StepContext) error {
				time.Sleep(stepLatency)
				return ctx.Txn.Update(ctx.Event.Entity, repro.Delta("balance", 1))
			})
			if err := e.Register(def); err != nil {
				log.Fatalf("E19: %v", err)
			}
			zipf := workload.NewZipf(19, entities, 1.2)
			steps := n / 4
			for i := 0; i < steps; i++ {
				id := "acct-hot"
				switch skew {
				case "uniform":
					id = fmt.Sprintf("acct-%d", i%entities)
				case "zipfian":
					id = fmt.Sprintf("acct-%d", zipf.Next())
				}
				ev := queue.Event{
					Name:   "e19.step",
					Entity: repro.Key{Type: "Account", ID: id},
					TxnID:  fmt.Sprintf("e19-%d", i),
				}
				if err := e.Submit(ev); err != nil {
					log.Fatalf("E19: %v", err)
				}
			}
			start := time.Now()
			e.Start()
			deadline := time.Now().Add(5 * time.Minute)
			for e.Stats().StepsExecuted < uint64(steps) {
				if time.Now().After(deadline) {
					log.Fatalf("E19: timed out waiting for steps: %+v", e.Stats())
				}
				time.Sleep(100 * time.Microsecond)
			}
			elapsed := time.Since(start)
			e.Stop()
			stats := e.Stats()
			tbl.AddRow(skew, workers, steps, opsPerSec(steps, elapsed), stats.LaneSteals, stats.PeakLaneDepth)
		}
	}
	return tbl
}

// E10: out-of-order data entry.
func e10(n int) *metrics.Table {
	tbl := metrics.NewTable("E10 — out-of-order data entry: strict vs managed exceptions (principle 2.2)",
		"mode", "entries", "rejected", "managed warnings")
	for _, mode := range []repro.Consistency{repro.StrongSingleCopy, repro.EventualSOUPS} {
		k := mustKernel(repro.Options{Node: "e10", Consistency: mode})
		gen := workload.NewOrderToCash(7, 0.3)
		rejected, entered := 0, 0
		cases := n / 10
		for i := 0; i < cases; i++ {
			events := gen.NextCase()
			if !events[1].ForwardReference {
				custKey, _ := entity.ParseKey(events[1].Ops[0].Value.(string))
				k.Update(custKey, repro.Set("name", "known"))
			}
			for _, ev := range events {
				if _, err := k.Update(ev.Key, ev.Ops...); err != nil {
					rejected++
				} else {
					entered++
				}
			}
		}
		name := "strict"
		if mode == repro.EventualSOUPS {
			name = "managed"
		}
		tbl.AddRow(name, rejected+entered, rejected, len(k.Warnings()))
		k.Close()
	}
	return tbl
}

// E11: coarse vs fine logical locks.
func e11(n int) *metrics.Table {
	tbl := metrics.NewTable("E11 — coarse vs fine logical locks under contention (section 3.1)",
		"granularity", "acquisitions", "ops/sec", "timeouts")
	for _, coarse := range []bool{true, false} {
		lm := locks.NewManager(locks.Options{})
		zipf := workload.NewZipf(5, 256, 1.1)
		var wg sync.WaitGroup
		var timeouts atomic.Int64
		per := n / 8
		start := time.Now()
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					owner := locks.Owner(fmt.Sprintf("w%d-%d", w, i))
					res := locks.FineResource("Inventory", fmt.Sprintf("item-%d", zipf.Next()))
					if coarse {
						res = locks.CoarseResource("Inventory", "plant-1")
					}
					if err := lm.Acquire(owner, res, locks.Exclusive, 0, 50*time.Millisecond); err != nil {
						timeouts.Add(1)
						continue
					}
					lm.Release(owner, res)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		name := "fine (per item)"
		if coarse {
			name = "coarse (per plant)"
		}
		tbl.AddRow(name, 8*per, opsPerSec(8*per, elapsed), timeouts.Load())
	}
	return tbl
}

// E12: online vs stop-the-world schema migration with live writers.
func e12(n int) *metrics.Table {
	tbl := metrics.NewTable("E12 — online vs stop-the-world schema migration (section 3.1)",
		"strategy", "entities backfilled", "migration time", "live writes", "live writes blocked")
	for _, strategy := range []migrate.Strategy{migrate.Online, migrate.StopTheWorld} {
		k := mustKernel(repro.Options{Node: clock.NodeID("e12-" + strategy.String())})
		entities := n / 4
		for i := 0; i < entities; i++ {
			k.Update(repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i)}, repro.Set("status", "OPEN"))
		}
		stop := make(chan struct{})
		var writes, blocked atomic.Int64
		go func() {
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				owner := locks.Owner(fmt.Sprintf("live-%d", i))
				if k.Locks().IsLockedByOther(owner, migrate.MigrationLockResource("Order"), locks.Shared) {
					blocked.Add(1)
					time.Sleep(100 * time.Microsecond)
					continue
				}
				if _, err := k.Update(repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i%entities)}, repro.Set("status", "TOUCHED")); err != nil {
					blocked.Add(1)
				} else {
					writes.Add(1)
				}
				i++
			}
		}()
		start := time.Now()
		_, err := k.Migrate(migrate.Migration{
			Type:      "Order",
			AddFields: []repro.Field{{Name: "channel", Type: repro.String}},
			Backfill:  func(*repro.State) []repro.Op { return []repro.Op{repro.Set("channel", "direct")} },
		}, strategy, 32)
		elapsed := time.Since(start)
		close(stop)
		if err != nil {
			log.Fatalf("E12: %v", err)
		}
		tbl.AddRow(strategy.String(), entities, elapsed, writes.Load(), blocked.Load())
		k.Close()
	}
	return tbl
}

// e22 measures the two claims behind the LSM tier (section 3.1, PR 9). First,
// persistence must come off the hot path: the legacy Checkpoint holds every
// shard lock while it serializes and fsyncs the full store, so a writer that
// arrives mid-checkpoint stalls for the whole disk write, while the tiered
// flush captures dirty state under the shard locks only long enough to copy
// pointers and does its serialization and fsync in the background. Second,
// recovery must stay bounded: because legacy checkpoints stall writers,
// operators take them rarely and WAL replay grows with history, whereas the
// tiered store replays the newest tables plus a short WAL tail no matter how
// much history has accumulated.
func e22(n int) *metrics.Table {
	tbl := metrics.NewTable("E22 — tiered storage: off-hot-path flushes and bounded recovery (section 3.1)",
		"phase", "mode", "records", "p99 append", "max append", "elapsed")

	open := func(mode, dir string) *lsdb.DB {
		wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
		if err != nil {
			log.Fatalf("E22: %v", err)
		}
		opts := lsdb.Options{Node: "e22"}
		if mode == "tiered" {
			store, err := lsm.Open(wal, lsm.Options{Dir: filepath.Join(dir, "sst"), CompactAfter: 100})
			if err != nil {
				log.Fatalf("E22: %v", err)
			}
			opts.Backend = store
		} else {
			opts.Backend = wal
		}
		db := lsdb.Open(opts)
		db.RegisterType(workload.AccountType())
		db.RegisterType(workload.OrderType())
		return db
	}
	write := func(db *lsdb.DB, i int) {
		_, err := db.Append(repro.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%64)},
			[]repro.Op{repro.Delta("balance", 1)},
			clock.Timestamp{WallNanos: int64(i + 1), Node: "e22"}, "e22", "")
		if err != nil {
			log.Fatalf("E22: %v", err)
		}
	}

	// Phase 1 — checkpoint stall: preload history, then append continuously
	// while a checkpoint/flush of that history runs. The recorded per-append
	// latencies show the stop-the-world quiesce (legacy) against the
	// off-hot-path flush (tiered).
	history := 32 * n
	for _, mode := range []string{"legacy", "tiered"} {
		dir, err := os.MkdirTemp("", "e22-stall-"+mode)
		if err != nil {
			log.Fatalf("E22: %v", err)
		}
		defer os.RemoveAll(dir)
		db := open(mode, dir)
		for i := 0; i < history; i++ {
			write(db, i)
		}
		hist := metrics.NewHistogram()
		done := make(chan error, 1)
		start := time.Now()
		go func() { done <- db.Checkpoint() }()
		// Keep appending until the checkpoint finishes (and for at least n
		// appends) so the timed writes are guaranteed to span the lock
		// window — otherwise a scheduling accident can let every append run
		// before the checkpoint goroutine is even dispatched.
		finished := false
		for i := 0; i < n || !finished; i++ {
			if !finished {
				select {
				case err := <-done:
					if err != nil {
						log.Fatalf("E22 %s checkpoint: %v", mode, err)
					}
					finished = true
				default:
				}
			}
			t0 := time.Now()
			write(db, history+i)
			hist.Record(time.Since(t0))
		}
		tbl.AddRow("ckpt-stall", mode, history, hist.Quantile(0.99), hist.Max(), time.Since(start))
		if err := db.Close(); err != nil {
			log.Fatalf("E22: %v", err)
		}
	}

	// Phase 2 — recovery vs history. The legacy store replays its whole WAL
	// (checkpoints are avoided because phase 1 shows what they cost); the
	// tiered store flushes every quarter of the load, so recovery reads the
	// newest tables plus a short tail regardless of total history.
	for _, mode := range []string{"legacy", "tiered"} {
		for _, records := range []int{2 * n, 8 * n} {
			dir, err := os.MkdirTemp("", "e22-recover-"+mode)
			if err != nil {
				log.Fatalf("E22: %v", err)
			}
			defer os.RemoveAll(dir)
			db := open(mode, dir)
			for i := 0; i < records; i++ {
				write(db, i)
				if mode == "tiered" && (i+1)%(records/4) == 0 {
					if err := db.Checkpoint(); err != nil {
						log.Fatalf("E22: %v", err)
					}
				}
			}
			head := db.HeadLSN()
			if err := db.Close(); err != nil {
				log.Fatalf("E22: %v", err)
			}
			t0 := time.Now()
			rec := func() *lsdb.DB {
				wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
				if err != nil {
					log.Fatalf("E22: %v", err)
				}
				opts := lsdb.Options{Node: "e22"}
				if mode == "tiered" {
					store, err := lsm.Open(wal, lsm.Options{Dir: filepath.Join(dir, "sst"), CompactAfter: 100})
					if err != nil {
						log.Fatalf("E22: %v", err)
					}
					opts.Backend = store
				} else {
					opts.Backend = wal
				}
				r, err := lsdb.Recover(opts, workload.AccountType(), workload.OrderType())
				if err != nil {
					log.Fatalf("E22 recover (%s): %v", mode, err)
				}
				return r
			}()
			elapsed := time.Since(t0)
			if rec.HeadLSN() != head {
				log.Fatalf("E22: recovered head %d, want %d", rec.HeadLSN(), head)
			}
			tbl.AddRow("recovery", mode, records, "-", "-", elapsed)
			if err := rec.Close(); err != nil {
				log.Fatalf("E22: %v", err)
			}
		}
	}
	return tbl
}
