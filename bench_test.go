// Benchmarks E1..E19: one per experiment in DESIGN.md / EXPERIMENTS.md.
//
// The paper publishes no tables or figures, so each benchmark
// operationalises one of its qualitative claims as a comparison between the
// principled design and the conventional baseline. Numbers are reported as
// ns/op plus experiment-specific metrics via b.ReportMetric (aborts/op,
// apology rate, availability, lost updates, convergence time, ...).
package repro_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/locks"
	"repro/internal/lsdb"
	"repro/internal/lsm"
	"repro/internal/migrate"
	"repro/internal/netsim"
	"repro/internal/process"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func mustKernel(b *testing.B, opts repro.Options) *repro.Kernel {
	b.Helper()
	k, err := repro.Bootstrap(opts, repro.StandardTypes()...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(k.Close)
	return k
}

// --- E1: deferred vs synchronous hot aggregate (principle 2.3) --------------

func BenchmarkE1AggregateSyncVsDeferred(b *testing.B) {
	for _, mode := range []string{"sync", "deferred"} {
		b.Run(mode, func(b *testing.B) {
			deferred := mode == "deferred"
			k := mustKernel(b, repro.Options{Node: "e1", DeferredAggregates: &deferred})
			k.DefineSumAggregate("revenue", "Order", "total", "")
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					key := repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i)}
					if _, err := k.Update(key, repro.Set("total", 10.0)); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			k.CatchUpAggregates()
			total, _ := k.Sum("revenue", "")
			if total != float64(seq.Load())*10 {
				b.Fatalf("aggregate wrong: %v vs %v writes", total, seq.Load())
			}
		})
	}
}

// --- E2: SOUPS vs two-phase commit across partitions (principles 2.5/2.6) ---

func BenchmarkE2SoupsVs2PC(b *testing.B) {
	for _, cross := range []float64{0.0, 0.5, 1.0} {
		for _, mode := range []string{"soups", "2pc"} {
			b.Run(fmt.Sprintf("%s/cross=%.0f%%", mode, cross*100), func(b *testing.B) {
				consistency := repro.EventualSOUPS
				if mode == "2pc" {
					consistency = repro.StrongSingleCopy
				}
				k := mustKernel(b, repro.Options{Node: "e2", Units: 4, Consistency: consistency})
				gen := workload.NewTransfers(42, 1000, cross)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr := gen.Next()
					err := k.TransactMulti([]repro.MultiWrite{
						{Key: tr.From, Ops: []repro.Op{repro.Delta("balance", -tr.Amount)}},
						{Key: tr.To, Ops: []repro.Op{repro.Delta("balance", tr.Amount)}},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if consistency == repro.EventualSOUPS {
					k.Drain() // deliver the queued halves before verifying
				}
			})
		}
	}
}

// --- E3: solipsistic vs optimistic vs pessimistic CC (principle 2.10) -------

func BenchmarkE3ConcurrencyControl(b *testing.B) {
	modes := map[string]txn.Mode{"solipsistic": txn.Solipsistic, "optimistic": txn.Optimistic, "pessimistic": txn.Pessimistic}
	for name, mode := range modes {
		b.Run(name, func(b *testing.B) {
			db := lsdb.Open(lsdb.Options{Node: "e3", SnapshotEvery: 64, Validation: entity.Managed})
			if err := db.RegisterType(workload.AccountType()); err != nil {
				b.Fatal(err)
			}
			mgr := txn.NewManager(db, nil, nil, txn.Options{Node: "e3", LockTimeout: 50 * time.Millisecond})
			zipf := workload.NewZipf(7, 64, 1.2)
			var aborts atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					key := repro.Key{Type: "Account", ID: fmt.Sprintf("acct-%d", zipf.Next())}
					_, err := mgr.Run(mode, nil, 0, func(t *txn.Txn) error {
						if _, err := t.Read(key); err != nil {
							return err
						}
						return t.Update(key, repro.Delta("balance", 1))
					})
					if err != nil {
						aborts.Add(1)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(aborts.Load())/float64(b.N), "aborts/op")
		})
	}
}

// --- E4: conflict resolution — LWW vs operation replay (principles 2.7/2.8) --

func BenchmarkE4ConflictResolution(b *testing.B) {
	typ := workload.AccountType()
	key := repro.Key{Type: "Account", ID: "A"}
	strategies := map[string]entity.MergeStrategy{
		"last-writer-wins": entity.LastWriterWins,
		"operation-replay": entity.OperationReplay,
	}
	for name, strategy := range strategies {
		b.Run(name, func(b *testing.B) {
			base := entity.NewState(key)
			base.Fields["balance"] = float64(0)
			var lost int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Two replicas concurrently deposit different amounts.
				mkVersion := func(node string, amount float64, wall int64) *entity.Version {
					ops := []repro.Op{repro.Delta("balance", amount), repro.InsertChild("entries", fmt.Sprintf("%s-%d", node, i), repro.Fields{"kind": "deposit", "amount": amount})}
					st, _, err := entity.Apply(typ, base, ops, entity.Managed)
					if err != nil {
						b.Fatal(err)
					}
					return &entity.Version{Key: key, Ops: ops, State: st, Stamp: clock.Timestamp{WallNanos: wall, Node: clock.NodeID(node)}}
				}
				a := mkVersion("r1", 10, int64(i*2+1))
				c := mkVersion("r2", 7, int64(i*2+2))
				res, err := entity.Merge(typ, base, a, c, strategy)
				if err != nil {
					b.Fatal(err)
				}
				lost += res.LostOps
			}
			b.StopTimer()
			b.ReportMetric(float64(lost)/float64(b.N), "lostops/op")
		})
	}
}

// --- E5: availability under partition (principle 2.11 / CAP) ----------------

func BenchmarkE5AvailabilityUnderPartition(b *testing.B) {
	for _, mode := range []replica.Mode{replica.Quorum, replica.Eventual} {
		b.Run(mode.String(), func(b *testing.B) {
			cluster, err := replica.NewCluster(3, mode, netsim.Config{UnreachableDelay: 200 * time.Microsecond}, workload.AccountType())
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Stop()
			// r0 is cut off from the majority for the whole run: the client
			// talking to it keeps trying to write.
			cluster.Network().Partition([]clock.NodeID{"r0"}, []clock.NodeID{"r1", "r2"})
			r0, _ := cluster.Replica(0)
			success := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := r0.Write(repro.Key{Type: "Account", ID: "A"}, []repro.Op{repro.Delta("balance", 1)}, "")
				if err == nil {
					success++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(success)/float64(b.N), "availability")
		})
	}
}

// --- E6: apologies vs strong consistency for overbooking (principle 2.9) ----

func BenchmarkE6ApologyVsStrong(b *testing.B) {
	const stock, demand = 5, 8
	b.Run("eventual-apology", func(b *testing.B) {
		var apologyRate float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			k := mustKernel(b, repro.Options{Node: "e6"})
			key := repro.Key{Type: "Book", ID: "bestseller"}
			k.Update(key, repro.Set("stock", stock))
			store := workload.NewBookstore(stock, demand)
			b.StartTimer()
			// Order entry: every customer gets an immediate tentative
			// confirmation (fast response, subjective consistency).
			for _, o := range store.Orders() {
				if _, err := k.UpdateTentative(key, o.Customer, "order-confirmation", float64(o.Qty),
					repro.Delta("stock", -float64(o.Qty))); err != nil {
					b.Fatal(err)
				}
			}
			// Fulfillment: reconcile against real stock; the overbooked tail
			// gets apologies.
			kept, apologies, err := k.ResolveOverbooking(key, stock, "only 5 copies in stock", "refund")
			if err != nil {
				b.Fatal(err)
			}
			if kept != stock || len(apologies) != demand-stock {
				b.Fatalf("kept=%d apologies=%d", kept, len(apologies))
			}
			apologyRate = k.Ledger().ApologyRate()
		}
		b.ReportMetric(apologyRate, "apology-rate")
	})
	b.Run("strong-reject", func(b *testing.B) {
		var rejectRate float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			k := mustKernel(b, repro.Options{Node: "e6s", Consistency: repro.StrongSingleCopy})
			key := repro.Key{Type: "Book", ID: "bestseller"}
			k.Update(key, repro.Set("stock", stock))
			store := workload.NewBookstore(stock, demand)
			rejected := 0
			b.StartTimer()
			// Order entry checks stock synchronously under pessimistic locks:
			// no apologies, but the tail of customers is turned away at order
			// time (and every order pays the locking cost).
			for _, o := range store.Orders() {
				_, err := k.Transact(key, func(t *txn.Txn) error {
					st, err := t.Read(key)
					if err != nil {
						return err
					}
					if st.Int("stock") < o.Qty {
						return errors.New("out of stock")
					}
					return t.Update(key, repro.Delta("stock", -float64(o.Qty)))
				})
				if err != nil {
					rejected++
				}
			}
			rejectRate = float64(rejected) / float64(demand)
		}
		b.ReportMetric(rejectRate, "reject-rate")
		b.ReportMetric(0, "apology-rate")
	})
}

// --- E7: convergence / staleness vs anti-entropy (eventual consistency) -----

func BenchmarkE7ConvergenceStaleness(b *testing.B) {
	for _, replicas := range []int{3, 5} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			var totalConverge time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cluster, err := replica.NewCluster(replicas, replica.Eventual,
					netsim.Config{LossRate: 0.3, Seed: int64(i + 1)}, workload.AccountType())
				if err != nil {
					b.Fatal(err)
				}
				key := repro.Key{Type: "Account", ID: "A"}
				b.StartTimer()
				for r := 0; r < replicas; r++ {
					rep, _ := cluster.Replica(r)
					if _, err := rep.Write(key, []repro.Op{repro.Delta("balance", 1)}, ""); err != nil {
						b.Fatal(err)
					}
				}
				start := time.Now()
				for {
					cluster.SyncRound()
					done := true
					for r := 0; r < replicas; r++ {
						rep, _ := cluster.Replica(r)
						st, err := rep.ReadResolved(key)
						if err != nil || st.Float("balance") != float64(replicas) {
							done = false
							break
						}
					}
					if done {
						break
					}
				}
				totalConverge += time.Since(start)
				b.StopTimer()
				cluster.Stop()
				b.StartTimer()
			}
			b.ReportMetric(float64(totalConverge.Microseconds())/float64(b.N), "convergence-us/op")
		})
	}
}

// --- E8: step collapsing (section 3.1) ---------------------------------------

func BenchmarkE8StepCollapsing(b *testing.B) {
	pipeline := func() *repro.ProcessDefinition {
		def := repro.NewProcess("order-to-cash")
		def.Step("order.created", func(ctx *process.StepContext) error {
			if err := ctx.Txn.Update(ctx.Event.Entity, repro.Set("status", "OPEN")); err != nil {
				return err
			}
			ctx.Emit(queue.Event{Name: "inventory.reserve", Entity: repro.Key{Type: "Inventory", ID: "widget"}})
			return nil
		})
		def.Step("inventory.reserve", func(ctx *process.StepContext) error {
			if err := ctx.Txn.Update(ctx.Event.Entity, repro.Delta("onhand", -1)); err != nil {
				return err
			}
			ctx.Emit(queue.Event{Name: "shipment.create", Entity: repro.Key{Type: "Order", ID: "ship-" + ctx.Event.TxnID}})
			return nil
		})
		def.Step("shipment.create", func(ctx *process.StepContext) error {
			return ctx.Txn.Update(ctx.Event.Entity, repro.Set("status", "PLANNED"))
		})
		return def
	}
	for _, collapse := range []bool{false, true} {
		name := "queued"
		if collapse {
			name = "vertical-collapse"
		}
		b.Run(name, func(b *testing.B) {
			k := mustKernel(b, repro.Options{Node: "e8", CollapseVertical: collapse})
			if err := k.DefineProcess(pipeline()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Submit(repro.Event{Name: "order.created", Entity: repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i)}, TxnID: fmt.Sprintf("e8-%d", i)})
				k.Drain()
			}
		})
	}
}

// --- E9: LSDB rollup cost vs log length (section 3.1) ------------------------

// E9 measures the raw rollup read path, so the materialised state cache is
// disabled; E13 measures the cache itself against this baseline.
func BenchmarkE9LSDBRollup(b *testing.B) {
	for _, logLen := range []int{100, 10000} {
		for _, snapshot := range []bool{false, true} {
			name := fmt.Sprintf("events=%d/snapshot=%v", logLen, snapshot)
			b.Run(name, func(b *testing.B) {
				snapEvery := 0
				if snapshot {
					snapEvery = 256
				}
				db := lsdb.Open(lsdb.Options{Node: "e9", SnapshotEvery: snapEvery, Validation: entity.Managed, DisableStateCache: true})
				if err := db.RegisterType(workload.AccountType()); err != nil {
					b.Fatal(err)
				}
				key := repro.Key{Type: "Account", ID: "A"}
				for i := 0; i < logLen; i++ {
					if _, err := db.Append(key, []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(i + 1), Node: "e9"}, "e9", ""); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := db.Current(key); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E13: materialised reads vs rollup at long histories (section 3.1) -------

// E13 is the read-heavy experiment for the materialised current-state cache:
// with the cache, Current is a map hit plus one state clone regardless of
// how many records the entity has accumulated; the rollup baseline (no
// cache, no snapshots) scales with history length.
func BenchmarkE13MaterialisedReads(b *testing.B) {
	for _, history := range []int{100, 1000} {
		for _, mode := range []string{"rollup", "cached"} {
			b.Run(fmt.Sprintf("history=%d/%s", history, mode), func(b *testing.B) {
				db := lsdb.Open(lsdb.Options{Node: "e13", Validation: entity.Managed, DisableStateCache: mode == "rollup"})
				if err := db.RegisterType(workload.AccountType()); err != nil {
					b.Fatal(err)
				}
				key := repro.Key{Type: "Account", ID: "A"}
				for i := 0; i < history; i++ {
					if _, err := db.Append(key, []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(i + 1), Node: "e13"}, "e13", ""); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						st, _, err := db.Current(key)
						if err != nil || st.Float("balance") != float64(history) {
							b.Errorf("Current: %v %v", st, err)
							return
						}
					}
				})
			})
		}
	}
}

// --- E14: mixed append/scan workload across shard counts (section 3.1) -------

// E14 is the mixed-scan experiment for lock striping: concurrent writers
// append to disjoint entities while scans sweep the whole type. With one
// shard every operation serialises on a single store lock; with eight,
// writers on different stripes proceed in parallel and scans only hold one
// stripe at a time.
func BenchmarkE14ShardedMixedScan(b *testing.B) {
	const entities = 256
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := lsdb.Open(lsdb.Options{Node: "e14", Validation: entity.Managed, Shards: shards})
			if err := db.RegisterType(workload.AccountType()); err != nil {
				b.Fatal(err)
			}
			keys := make([]repro.Key, entities)
			for i := range keys {
				keys[i] = repro.Key{Type: "Account", ID: fmt.Sprintf("acct-%d", i)}
				if _, err := db.Append(keys[i], []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(i + 1), Node: "e14"}, "e14", ""); err != nil {
					b.Fatal(err)
				}
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					if i%16 == 0 {
						if err := db.Scan("Account", func(*entity.State) bool { return true }); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					key := keys[int(i)%entities]
					if _, err := db.Append(key, []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: int64(entities + int(i)), Node: "e14"}, "e14", ""); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// --- E15: copy-on-write states vs deep clones on wide entities (section 3.1) --

// seedWideOrder builds one Order with `width` line items in the given store.
func seedWideOrder(b *testing.B, db *lsdb.DB, key repro.Key, width int) {
	b.Helper()
	if _, err := db.Append(key, []repro.Op{repro.Set("status", "OPEN")}, clock.Timestamp{WallNanos: 1, Node: "seed"}, "seed", ""); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < width; i++ {
		ops := []repro.Op{repro.InsertChild("lineitems", fmt.Sprintf("L%d", i), repro.Fields{"product": "widget", "qty": 1, "price": 9.5})}
		if _, err := db.Append(key, ops, clock.Timestamp{WallNanos: int64(i + 2), Node: "seed"}, "seed", ""); err != nil {
			b.Fatal(err)
		}
	}
}

// E15 is the wide-entity experiment for copy-on-write states: with COW a
// cache-hit read hands out the frozen state (no copy at all) and a write
// copies only the chunk it touches, so both are flat in child-collection
// width; the deep-clone baseline (Options.DeepCloneStates, the PR-1
// behaviour) pays O(width) on every read and every write.
func BenchmarkE15WideEntityCOW(b *testing.B) {
	for _, width := range []int{10, 100, 1000} {
		for _, mode := range []string{"deepclone", "cow"} {
			newDB := func() *lsdb.DB {
				db := lsdb.Open(lsdb.Options{Node: "e15", Validation: entity.Managed, DeepCloneStates: mode == "deepclone"})
				if err := db.RegisterType(workload.OrderType()); err != nil {
					b.Fatal(err)
				}
				return db
			}
			key := repro.Key{Type: "Order", ID: "wide"}
			b.Run(fmt.Sprintf("width=%d/%s/read", width, mode), func(b *testing.B) {
				db := newDB()
				seedWideOrder(b, db, key, width)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, _, err := db.Current(key)
					if err != nil || st.ChildCount("lineitems") != width {
						b.Fatalf("Current: %v children=%d", err, st.ChildCount("lineitems"))
					}
				}
			})
			b.Run(fmt.Sprintf("width=%d/%s/write", width, mode), func(b *testing.B) {
				db := newDB()
				seedWideOrder(b, db, key, width)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					child := fmt.Sprintf("L%d", i%width)
					ops := []repro.Op{entity.DeltaChildField("lineitems", child, "qty", 1)}
					if _, err := db.Append(key, ops, clock.Timestamp{WallNanos: int64(width + i + 2), Node: "e15"}, "e15", ""); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E16: scans and queries over wide entities (section 3.1) -----------------

// E16 measures Scan throughput when every entity is wide: with COW the scan
// shares each frozen state with the cache, so per-entity cost is the
// caller's own work; the deep-clone baseline copies every child row of every
// entity on every visit.
func BenchmarkE16WideScan(b *testing.B) {
	const entities, width = 64, 256
	for _, mode := range []string{"deepclone", "cow"} {
		b.Run(mode, func(b *testing.B) {
			db := lsdb.Open(lsdb.Options{Node: "e16", Validation: entity.Managed, DeepCloneStates: mode == "deepclone"})
			if err := db.RegisterType(workload.OrderType()); err != nil {
				b.Fatal(err)
			}
			for e := 0; e < entities; e++ {
				seedWideOrder(b, db, repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", e)}, width)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var qty int64
				err := db.Scan("Order", func(st *entity.State) bool {
					for _, row := range st.LiveChildren("lineitems") {
						v, _ := row.Fields["qty"].(int64)
						qty += v
					}
					return true
				})
				if err != nil || qty < int64(entities*width) {
					b.Fatalf("scan: %v qty=%d", err, qty)
				}
			}
		})
	}
}

// --- E17: group-commit append batching under concurrent writers (section 3.1) --

// E17 is the multi-writer write-path experiment for group-commit batching:
// W concurrent writers append commutative deltas to a small hot key set, with
// per-append locking vs group commit (lsdb.Options.GroupCommit). The sync
// dimension selects the per-commit-cycle cost the batching amortises:
//
//   - sync=mem: the store is purely main-memory resident; the only fixed
//     costs are the shard-lock handoff and the global LSN allocation. Those
//     are scheduler-scale, so this dimension only separates the modes on
//     hardware with real parallelism.
//   - sync=fsync: every commit cycle forces a write-ahead line per record to
//     a real file and fsyncs it (lsdb.Options.CommitHook), the durability
//     cost any persistent log pays. Per-append locking pays one fsync per
//     append; group commit pays one per batch — the classic group-commit
//     amortisation, visible on any hardware.
//
// The equivalence suite (TestGroupCommitSerialEquivalenceRandomized and
// friends) pins down that the two modes are observationally identical; this
// benchmark measures what the batching buys.
func BenchmarkE17AppendBatch(b *testing.B) {
	const hotKeys = 16
	for _, syncMode := range []string{"mem", "fsync"} {
		for _, writers := range []int{1, 4, 8} {
			for _, shards := range []int{1, 8} {
				for _, mode := range []string{"per-append", "batched"} {
					name := fmt.Sprintf("sync=%s/writers=%d/shards=%d/%s", syncMode, writers, shards, mode)
					b.Run(name, func(b *testing.B) {
						// "W writers" means W truly concurrent writers: give
						// the scheduler enough Ps to run them in parallel even
						// on a small CI box, otherwise goroutines serialise
						// and no lock is ever contended — the regime this
						// experiment measures never happens.
						if procs := runtime.GOMAXPROCS(0); procs < writers {
							defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(writers))
						}
						opts := lsdb.Options{Node: "e17", Validation: entity.Managed, Shards: shards, GroupCommit: mode == "batched"}
						if syncMode == "fsync" {
							wal, err := os.CreateTemp(b.TempDir(), "e17-wal")
							if err != nil {
								b.Fatal(err)
							}
							defer wal.Close()
							opts.CommitHook = func(recs []lsdb.Record) {
								for _, rec := range recs {
									fmt.Fprintf(wal, "%d %s %d\n", rec.LSN, rec.Key.ID, len(rec.Ops))
								}
								if err := wal.Sync(); err != nil {
									b.Error(err)
								}
							}
						}
						db := lsdb.Open(opts)
						if err := db.RegisterType(workload.AccountType()); err != nil {
							b.Fatal(err)
						}
						keys := make([]repro.Key, hotKeys)
						for i := range keys {
							keys[i] = repro.Key{Type: "Account", ID: fmt.Sprintf("acct-%d", i)}
						}
						var wg sync.WaitGroup
						var seq atomic.Int64
						b.ResetTimer()
						for w := 0; w < writers; w++ {
							wg.Add(1)
							go func() {
								defer wg.Done()
								for {
									i := seq.Add(1)
									if i > int64(b.N) {
										return
									}
									key := keys[int(i)%hotKeys]
									if _, err := db.Append(key, []repro.Op{repro.Delta("balance", 1)}, clock.Timestamp{WallNanos: i, Node: "e17"}, "e17", ""); err != nil {
										b.Error(err)
										return
									}
								}
							}()
						}
						wg.Wait()
						b.StopTimer()
						if db.Len() != b.N {
							b.Fatalf("log has %d records, want %d", db.Len(), b.N)
						}
					})
				}
			}
		}
	}
}

// --- E18: durable storage — recovery time and append overhead (section 3.1) --

// seedStorageBench fills a store with deltas over a fixed working set plus
// child-row traffic, the shape the recovery path has to replay.
func seedStorageBench(b *testing.B, db *lsdb.DB, records int) {
	b.Helper()
	for i := 0; i < records; i++ {
		var err error
		if i%8 == 0 {
			key := repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i%32)}
			_, err = db.Append(key, []repro.Op{
				repro.InsertChild("lineitems", fmt.Sprintf("L%d", i), repro.Fields{"product": "widget", "qty": int64(i % 7)}),
			}, clock.Timestamp{WallNanos: int64(i + 1), Node: "e18"}, "e18", fmt.Sprintf("t%d", i))
		} else {
			key := repro.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%64)}
			_, err = db.Append(key, []repro.Op{repro.Delta("balance", 1)},
				clock.Timestamp{WallNanos: int64(i + 1), Node: "e18"}, "e18", "")
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func e18Types(b *testing.B, db *lsdb.DB) {
	b.Helper()
	for _, t := range []*entity.Type{workload.AccountType(), workload.OrderType()} {
		if err := db.RegisterType(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18Recovery compares restart cost across log lengths:
//
//   - json: the pre-storage-engine path — Save the whole log as a JSON
//     stream, Load it back record by record. O(history), JSON decode on
//     every record.
//   - wal: segmented-WAL replay with no checkpoint. Still O(history), but
//     binary frames instead of JSON documents.
//   - ckpt: a checkpoint was taken at shutdown; recovery streams the
//     snapshot and replays only the (empty) tail. Same record count, one
//     sorted sequential file.
//   - ckpt-compacted: history summarised (Compact) before the checkpoint,
//     the paper's archival principle 2.7 — recovery cost drops to O(live
//     state), independent of how long the log ever was.
func BenchmarkE18Recovery(b *testing.B) {
	for _, records := range []int{4096, 16384} {
		for _, mode := range []string{"json", "wal", "ckpt", "ckpt-compacted"} {
			b.Run(fmt.Sprintf("records=%d/%s", records, mode), func(b *testing.B) {
				if mode == "json" {
					src := lsdb.Open(lsdb.Options{Node: "e18"})
					e18Types(b, src)
					seedStorageBench(b, src, records)
					var stream bytes.Buffer
					if err := src.Save(&stream); err != nil {
						b.Fatal(err)
					}
					raw := stream.Bytes()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						dst := lsdb.Open(lsdb.Options{Node: "e18"})
						e18Types(b, dst)
						if err := dst.Load(bytes.NewReader(raw)); err != nil {
							b.Fatal(err)
						}
						if dst.HeadLSN() != uint64(records) {
							b.Fatalf("loaded head %d, want %d", dst.HeadLSN(), records)
						}
					}
					return
				}
				dir := b.TempDir()
				wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				src := lsdb.Open(lsdb.Options{Node: "e18", Backend: wal})
				e18Types(b, src)
				seedStorageBench(b, src, records)
				if mode == "ckpt-compacted" {
					src.Compact(src.HeadLSN())
				}
				if mode != "wal" {
					if err := src.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
				if err := src.Close(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
					if err != nil {
						b.Fatal(err)
					}
					rec, err := lsdb.Recover(lsdb.Options{Node: "e18", Backend: wal},
						workload.AccountType(), workload.OrderType())
					if err != nil {
						b.Fatal(err)
					}
					if rec.HeadLSN() != uint64(records) {
						b.Fatalf("recovered head %d, want %d", rec.HeadLSN(), records)
					}
					if err := rec.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE18AppendOverhead prices durability on the write path: the same
// single-writer append stream against no backend, a page-cache WAL, and a
// WAL that fsyncs every commit cycle. Combine with E17 for the group-commit
// amortisation of that fsync across concurrent writers.
func BenchmarkE18AppendOverhead(b *testing.B) {
	for _, mode := range []string{"mem", "wal", "wal-fsync"} {
		b.Run(mode, func(b *testing.B) {
			opts := lsdb.Options{Node: "e18", Validation: entity.Managed}
			if mode != "mem" {
				sync := storage.SyncOS
				if mode == "wal-fsync" {
					sync = storage.SyncAlways
				}
				wal, err := storage.OpenWAL(storage.WALOptions{Dir: b.TempDir(), Sync: sync})
				if err != nil {
					b.Fatal(err)
				}
				opts.Backend = wal
			}
			db := lsdb.Open(opts)
			if err := db.RegisterType(workload.AccountType()); err != nil {
				b.Fatal(err)
			}
			key := repro.Key{Type: "Account", ID: "hot"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Append(key, []repro.Op{repro.Delta("balance", 1)},
					clock.Timestamp{WallNanos: int64(i + 1), Node: "e18"}, "e18", ""); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- E19: work-stealing step pool across workers × entity skew (2.5/2.6) -----

// e19Skews are the entity-key distributions E19 sweeps: uniform spreads
// steps over many independent entities (the regime where cross-entity
// parallelism must scale), zipfian concentrates most steps on a few hot
// entities, and single-hot sends every step to one entity — the regime
// where the ordering contract forces full serialisation and extra workers
// must buy nothing (and break nothing).
var e19Skews = []string{"uniform", "zipfian", "single-hot"}

// e19Key picks the i-th event's entity under a skew.
func e19Key(skew string, zipf *workload.Zipf, i int) repro.Key {
	const entities = 256
	switch skew {
	case "uniform":
		return repro.Key{Type: "Account", ID: fmt.Sprintf("acct-%d", i%entities)}
	case "zipfian":
		return repro.Key{Type: "Account", ID: fmt.Sprintf("acct-%d", zipf.Next())}
	default:
		return repro.Key{Type: "Account", ID: "acct-hot"}
	}
}

// BenchmarkE19WorkStealingPool measures the process engine's work-stealing
// pool: throughput of a fixed-latency step across worker counts and entity
// skews. Each step models a realistic service time (a downstream call, a
// log force) with a 100µs wait before its transaction commits, so the
// scaling regime is step-latency-bound — the regime the pool exists for —
// and the results are comparable across hosts regardless of core count
// (the same honesty note as E17's sync=mem rows: pure-CPU steps cannot
// scale past the hardware's parallelism). Uniform keys should scale with
// workers; single-hot must stay flat — per-entity serialisation is the
// contract, not a bottleneck to fix. Lane steals are reported per 1000
// steps.
func BenchmarkE19WorkStealingPool(b *testing.B) {
	const stepLatency = 100 * time.Microsecond
	for _, skew := range e19Skews {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("skew=%s/workers=%d", skew, workers), func(b *testing.B) {
				db := lsdb.Open(lsdb.Options{Node: "e19", Validation: entity.Managed, Shards: 8})
				if err := db.RegisterType(workload.AccountType()); err != nil {
					b.Fatal(err)
				}
				mgr := txn.NewManager(db, nil, nil, txn.Options{Node: "e19"})
				// A long visibility timeout: the whole backlog is submitted up
				// front and sits in lanes until executed.
				q := queue.New("e19", queue.Options{VisibilityTimeout: 10 * time.Minute})
				e := process.NewEngine(mgr, q, process.Options{Workers: workers})
				def := process.NewDefinition("e19")
				def.Step("e19.step", func(ctx *process.StepContext) error {
					time.Sleep(stepLatency)
					return ctx.Txn.Update(ctx.Event.Entity, repro.Delta("balance", 1))
				})
				if err := e.Register(def); err != nil {
					b.Fatal(err)
				}
				zipf := workload.NewZipf(19, 256, 1.2)
				for i := 0; i < b.N; i++ {
					ev := queue.Event{
						Name:   "e19.step",
						Entity: e19Key(skew, zipf, i),
						TxnID:  fmt.Sprintf("e19-%d", i),
					}
					if err := e.Submit(ev); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				e.Start()
				deadline := time.Now().Add(5 * time.Minute)
				for e.Stats().StepsExecuted < uint64(b.N) {
					if time.Now().After(deadline) {
						b.Fatalf("timed out: %+v", e.Stats())
					}
					time.Sleep(50 * time.Microsecond)
				}
				b.StopTimer()
				e.Stop()
				stats := e.Stats()
				if stats.StepsExecuted != uint64(b.N) {
					b.Fatalf("steps executed = %d, want %d", stats.StepsExecuted, b.N)
				}
				b.ReportMetric(float64(stats.LaneSteals)*1000/float64(b.N), "steals/1ksteps")
				b.ReportMetric(float64(stats.PeakLaneDepth), "peak-lane-depth")
			})
		}
	}
}

// --- E10: out-of-order data entry — strict vs managed (principle 2.2) --------

func BenchmarkE10OutOfOrderEntry(b *testing.B) {
	for _, mode := range []string{"strict", "managed"} {
		b.Run(mode, func(b *testing.B) {
			consistency := repro.EventualSOUPS
			if mode == "strict" {
				consistency = repro.StrongSingleCopy
			}
			k := mustKernel(b, repro.Options{Node: "e10", Consistency: consistency})
			gen := workload.NewOrderToCash(7, 0.3)
			rejected, entered := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				events := gen.NextCase()
				if !events[1].ForwardReference {
					// In-order case: the referenced customer master record is
					// entered before the opportunity and order.
					custID := events[1].Ops[0].Value.(string)
					custKey, _ := entity.ParseKey(custID)
					if _, err := k.Update(custKey, repro.Set("name", "known customer")); err != nil {
						b.Fatal(err)
					}
				}
				for _, ev := range events {
					_, err := k.Update(ev.Key, ev.Ops...)
					if err != nil {
						rejected++
						continue
					}
					entered++
				}
			}
			b.StopTimer()
			total := rejected + entered
			if total > 0 {
				b.ReportMetric(float64(rejected)/float64(total), "reject-rate")
			}
			b.ReportMetric(float64(len(k.Warnings()))/float64(b.N), "managed-warnings/op")
		})
	}
}

// --- E11: coarse logical locks vs per-entity locks (section 3.1) -------------

func BenchmarkE11LogicalLocks(b *testing.B) {
	for _, granularity := range []string{"coarse", "fine"} {
		b.Run(granularity, func(b *testing.B) {
			lm := locks.NewManager(locks.Options{})
			zipf := workload.NewZipf(5, 256, 1.1)
			var conflicts atomic.Int64
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					item := zipf.Next()
					owner := locks.Owner(fmt.Sprintf("w%d", seq.Add(1)))
					var res string
					if granularity == "coarse" {
						res = locks.CoarseResource("Inventory", "plant-1")
					} else {
						res = locks.FineResource("Inventory", fmt.Sprintf("item-%d", item))
					}
					if err := lm.Acquire(owner, res, locks.Exclusive, 0, 100*time.Millisecond); err != nil {
						conflicts.Add(1)
						continue
					}
					// Simulated deferred update protected by the lock.
					lm.Release(owner, res)
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(conflicts.Load())/float64(b.N), "timeouts/op")
		})
	}
}

// --- E12: online vs stop-the-world schema migration (section 3.1) -----------

func BenchmarkE12OnlineMigration(b *testing.B) {
	for _, strategy := range []migrate.Strategy{migrate.Online, migrate.StopTheWorld} {
		b.Run(strategy.String(), func(b *testing.B) {
			k := mustKernel(b, repro.Options{Node: clock.NodeID("e12-" + strategy.String())})
			const entities = 300
			for i := 0; i < entities; i++ {
				k.Update(repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i)}, repro.Set("status", "OPEN"))
			}
			// Live writers run during the migration; their blocked/failed
			// attempts are the availability cost.
			stop := make(chan struct{})
			var liveWrites, liveBlocked atomic.Int64
			go func() {
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					owner := locks.Owner(fmt.Sprintf("live-%d", i))
					if k.Locks().IsLockedByOther(owner, migrate.MigrationLockResource("Order"), locks.Shared) {
						liveBlocked.Add(1)
						time.Sleep(100 * time.Microsecond)
						continue
					}
					if _, err := k.Update(repro.Key{Type: "Order", ID: fmt.Sprintf("O%d", i%entities)}, repro.Set("status", "TOUCHED")); err != nil {
						liveBlocked.Add(1)
					} else {
						liveWrites.Add(1)
					}
					i++
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				field := fmt.Sprintf("channel_%s_%d", strategy.String(), i)
				_, err := k.Migrate(migrate.Migration{
					Type:      "Order",
					AddFields: []repro.Field{{Name: field, Type: repro.String}},
					Backfill: func(st *repro.State) []repro.Op {
						return []repro.Op{repro.Set(field, "direct")}
					},
				}, strategy, 32)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			total := liveWrites.Load() + liveBlocked.Load()
			if total > 0 {
				b.ReportMetric(float64(liveBlocked.Load())/float64(total), "writer-blocked-ratio")
			}
		})
	}
}

// --- E20: WAL-shipped replication — the price of each ack mode -------------

// BenchmarkE20ReplicationModes prices the replication ack spectrum on the
// write path: the same sequential append stream against an unreplicated
// store (baseline), and against a primary shipping every commit to standbys
// over a simulated network with 2ms one-way link latency (a WAN-ish hop,
// chosen to dominate the simulator's timer granularity so the rows read as
// the latency model, not as sleep overhead), under each ack mode. Async
// should track the baseline (shipping is fire-and-forget); sync and quorum
// pay ~one round trip per commit regardless of standby count, because the
// per-standby lanes fan out concurrently and the commit blocks only on an
// ack barrier (E21 isolates that fan-out). The gap between the rows is the
// paper's consistency dial rendered in nanoseconds — what principle 2.1's
// "embrace inconsistency" buys when you take it.
func BenchmarkE20ReplicationModes(b *testing.B) {
	const linkLatency = 2 * time.Millisecond
	stamp := func(n int64) clock.Timestamp { return clock.Timestamp{WallNanos: n, Node: "e20"} }
	for _, cfg := range []struct {
		name     string
		standbys int
		mode     replica.AckMode
	}{
		{"serial", 0, replica.AckAsync},
		{"async-2sb", 2, replica.AckAsync},
		{"sync-2sb", 2, replica.AckSync},
		{"quorum-3sb", 3, replica.AckQuorum},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db := lsdb.Open(lsdb.Options{Node: "e20", Backend: storage.NewMemory(), Shards: 4})
			if err := db.RegisterType(workload.AccountType()); err != nil {
				b.Fatal(err)
			}
			var sh *replica.Shipper
			if cfg.standbys > 0 {
				net := netsim.New(netsim.Config{})
				defer net.Close()
				var ids []clock.NodeID
				for s := 0; s < cfg.standbys; s++ {
					id := clock.NodeID(fmt.Sprintf("e20-s%d", s))
					if _, err := replica.NewStandby(replica.StandbyOptions{
						Self: id, Net: net, Backends: []storage.Backend{storage.NewMemory()},
					}); err != nil {
						b.Fatal(err)
					}
					net.SetLinkFault("e20-p", id, netsim.LinkFault{ExtraLatency: linkLatency})
					net.SetLinkFault(id, "e20-p", netsim.LinkFault{ExtraLatency: linkLatency})
					ids = append(ids, id)
				}
				sh = replica.NewShipper(replica.ShipperOptions{
					Self: "e20-p", Standbys: ids, Mode: cfg.mode, Net: net,
					Source: func(_ int, after uint64, limit int) []lsdb.Record { return db.RecordsAfterN(after, limit) },
				})
				db.SetCommitSink(sh.Sink(0))
			}
			keys := make([]entity.Key, 8)
			for i := range keys {
				keys[i] = entity.Key{Type: "Account", ID: fmt.Sprintf("E20-%d", i)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := db.Append(keys[i%len(keys)], []entity.Op{entity.Delta("balance", 1)},
					stamp(int64(i+1)), "e20-p", fmt.Sprintf("e20-%d", i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if sh != nil {
				sh.Drain() // async lanes may still be delivering; settle before reading stats
				st := sh.Stats()
				if cfg.mode != replica.AckAsync && st.ShipFailures > 0 {
					b.Fatalf("%d ship failures on a healthy network", st.ShipFailures)
				}
				b.ReportMetric(float64(st.RecordsShipped)/float64(b.N), "shipped/op")
			}
		})
	}
}

// --- E21: parallel ship fan-out — sync and quorum at ~1 RTT ----------------

// BenchmarkE21ParallelFanout measures what fanning the per-standby ships out
// of the commit path buys: with 2ms one-way links (4ms RTT), a sync commit
// to 2 standbys and a quorum commit to 3 should each cost ~1 RTT — the lanes
// ship concurrently and the barrier releases at the slowest *needed* ack —
// where a serial walk would cost one RTT per standby (E20's pre-fan-out
// recording: 11.2ms for sync-2sb, 16.3ms for quorum-3sb). The one-slow row
// parks a 10ms link inside a quorum-of-3 set: the majority acks over fast
// links satisfy the barrier, so the slow standby prices at zero on the
// commit path (it trails behind in its own lane, healed by catch-up if its
// window overflows — reported as overflows/op).
func BenchmarkE21ParallelFanout(b *testing.B) {
	const linkLatency = 2 * time.Millisecond
	const slowLatency = 10 * time.Millisecond
	stamp := func(n int64) clock.Timestamp { return clock.Timestamp{WallNanos: n, Node: "e21"} }
	for _, cfg := range []struct {
		name     string
		standbys int
		mode     replica.AckMode
		slow     int // standbys (from the front) behind a slow link
	}{
		{"sync-2sb", 2, replica.AckSync, 0},
		{"quorum-3sb", 3, replica.AckQuorum, 0},
		{"quorum-3sb-one-slow", 3, replica.AckQuorum, 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db := lsdb.Open(lsdb.Options{Node: "e21", Backend: storage.NewMemory(), Shards: 4})
			if err := db.RegisterType(workload.AccountType()); err != nil {
				b.Fatal(err)
			}
			net := netsim.New(netsim.Config{})
			defer net.Close()
			var ids []clock.NodeID
			for s := 0; s < cfg.standbys; s++ {
				id := clock.NodeID(fmt.Sprintf("e21-s%d", s))
				if _, err := replica.NewStandby(replica.StandbyOptions{
					Self: id, Net: net, Backends: []storage.Backend{storage.NewMemory()},
				}); err != nil {
					b.Fatal(err)
				}
				lat := linkLatency
				if s < cfg.slow {
					lat = slowLatency
				}
				net.SetLinkFault("e21-p", id, netsim.LinkFault{ExtraLatency: lat})
				net.SetLinkFault(id, "e21-p", netsim.LinkFault{ExtraLatency: lat})
				ids = append(ids, id)
			}
			sh := replica.NewShipper(replica.ShipperOptions{
				Self: "e21-p", Standbys: ids, Mode: cfg.mode, Net: net,
				Source: func(_ int, after uint64, limit int) []lsdb.Record { return db.RecordsAfterN(after, limit) },
			})
			db.SetCommitSink(sh.Sink(0))
			key := entity.Key{Type: "Account", ID: "E21"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)},
					stamp(int64(i+1)), "e21-p", fmt.Sprintf("e21-%d", i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			rtt := float64(2 * linkLatency)
			b.ReportMetric(float64(b.Elapsed())/float64(b.N)/rtt, "rtts/op")
			st := sh.Stats()
			if cfg.slow == 0 {
				sh.Drain()
				if st.ShipFailures > 0 {
					b.Fatalf("%d ship failures on a healthy network", st.ShipFailures)
				}
			}
			b.ReportMetric(float64(st.WindowOverflows)/float64(b.N), "overflows/op")
		})
	}
}

// --- E22: tiered storage — off-hot-path flushes, bounded recovery (PR 9) ----

func e22Open(b *testing.B, mode, dir string) *lsdb.DB {
	b.Helper()
	wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	opts := lsdb.Options{Node: "e22"}
	if mode == "tiered" {
		store, err := lsm.Open(wal, lsm.Options{Dir: filepath.Join(dir, "sst"), CompactAfter: 100})
		if err != nil {
			b.Fatal(err)
		}
		opts.Backend = store
	} else {
		opts.Backend = wal
	}
	db := lsdb.Open(opts)
	e18Types(b, db)
	return db
}

// BenchmarkE22FlushStall measures per-append latency while a checkpoint of
// 64k records of history runs concurrently. The legacy backend quiesces every
// shard for the full serialize+fsync, so an unlucky append stalls for the
// whole disk write; the tiered flush only briefly holds the shard locks to
// capture dirty pointers. ns/op is the append cost including any stall;
// max-stall-ms is the worst single append.
func BenchmarkE22FlushStall(b *testing.B) {
	for _, mode := range []string{"legacy", "tiered"} {
		b.Run(mode, func(b *testing.B) {
			dir := b.TempDir()
			db := e22Open(b, mode, dir)
			defer db.Close()
			seedStorageBench(b, db, 65536)
			done := make(chan error, 1)
			go func() { done <- db.Checkpoint() }()
			// Give the checkpoint goroutine a head start so the timed appends
			// actually contend with it rather than finishing before it is
			// dispatched.
			time.Sleep(time.Millisecond)
			var maxStall time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := db.Append(repro.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%64)},
					[]repro.Op{repro.Delta("balance", 1)},
					clock.Timestamp{WallNanos: int64(10000 + i), Node: "e22"}, "e22", ""); err != nil {
					b.Fatal(err)
				}
				if d := time.Since(t0); d > maxStall {
					maxStall = d
				}
			}
			b.StopTimer()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(maxStall.Nanoseconds())/1e6, "max-stall-ms")
		})
	}
}

// BenchmarkE22Recovery measures restart time as history grows. The legacy
// store replays its entire WAL, so recovery scales with total history; the
// tiered store loads replay pointers from the newest tables and replays only
// the short tail written after the last flush, so it stays flat.
func BenchmarkE22Recovery(b *testing.B) {
	for _, records := range []int{4096, 16384} {
		for _, mode := range []string{"legacy", "tiered"} {
			b.Run(fmt.Sprintf("records=%d/%s", records, mode), func(b *testing.B) {
				dir := b.TempDir()
				src := e22Open(b, mode, dir)
				seedStorageBench(b, src, records)
				if mode == "tiered" {
					if err := src.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
				// A short unflushed tail rides on top in both modes.
				for i := 0; i < 256; i++ {
					if _, err := src.Append(repro.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%64)},
						[]repro.Op{repro.Delta("balance", 1)},
						clock.Timestamp{WallNanos: int64(records + i + 1), Node: "e22"}, "e22", ""); err != nil {
						b.Fatal(err)
					}
				}
				head := src.HeadLSN()
				if err := src.Close(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
					if err != nil {
						b.Fatal(err)
					}
					opts := lsdb.Options{Node: "e22"}
					if mode == "tiered" {
						store, err := lsm.Open(wal, lsm.Options{Dir: filepath.Join(dir, "sst"), CompactAfter: 100})
						if err != nil {
							b.Fatal(err)
						}
						opts.Backend = store
					} else {
						opts.Backend = wal
					}
					rec, err := lsdb.Recover(opts, workload.AccountType(), workload.OrderType())
					if err != nil {
						b.Fatal(err)
					}
					if rec.HeadLSN() != head {
						b.Fatalf("recovered head %d, want %d", rec.HeadLSN(), head)
					}
					if err := rec.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
