// Package repro is the public facade of the inconsistency-principled data
// management kernel built after "Principles for Inconsistency" (Finkelstein,
// Brendle, Jacobs; CIDR 2009). It re-exports the kernel and the vocabulary
// types applications need; the substrates live under internal/.
//
// A minimal program:
//
//	k, err := repro.Bootstrap(repro.Options{Node: "demo", Units: 2}, repro.StandardTypes()...)
//	if err != nil { ... }
//	defer k.Close()
//	k.Update(repro.Key{Type: "Account", ID: "A"}, repro.Delta("balance", 100))
//	state, _ := k.Read(repro.Key{Type: "Account", ID: "A"})
//
// See README.md for the quickstart, the examples/ directory for complete
// scenarios, DESIGN.md for the implementation walkthrough and EXPERIMENTS.md
// for the benchmark suite.
package repro

import (
	"repro/internal/apology"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/migrate"
	"repro/internal/process"
	"repro/internal/queue"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Kernel is the inconsistency-principled data management kernel.
type Kernel = core.Kernel

// Options configure a Kernel.
type Options = core.Options

// Consistency selects the kernel-wide discipline.
type Consistency = core.Consistency

// Kernel-wide consistency disciplines.
const (
	// EventualSOUPS is the paper's recommended discipline: solipsistic
	// single-entity transactions, queued propagation, deferred secondary
	// data, managed constraint violations.
	EventualSOUPS = core.EventualSOUPS
	// StrongSingleCopy is the conventional strongly consistent baseline.
	StrongSingleCopy = core.StrongSingleCopy
)

// MultiWrite is one entity write inside a multi-entity request.
type MultiWrite = core.MultiWrite

// ReplicationOptions configure WAL-shipped replication of a kernel's units
// to standby replicas (Options.Replication); see internal/replica for the
// ack modes and transport contract.
type ReplicationOptions = core.ReplicationOptions

// ReplicaStats describes a kernel's replication posture and shipping
// progress (Kernel.ReplicaStats).
type ReplicaStats = core.ReplicaStats

// Health describes a kernel's degraded/overload posture (Kernel.Health):
// degraded read-only units, admission-control counters and standby circuit
// breaker states.
type Health = core.Health

// UnitHealth is one serialization unit's entry in Health.
type UnitHealth = core.UnitHealth

// SyncMode selects when the write-ahead log forces appended bytes to stable
// storage (Options.Fsync, meaningful with Options.DataDir).
type SyncMode = storage.SyncMode

// Write-ahead log sync modes.
const (
	// SyncOS leaves flushing to the page cache (fast; a crash may lose the
	// most recent commits, recovery truncates the torn tail).
	SyncOS = storage.SyncOS
	// SyncAlways fsyncs every commit cycle; group commit amortises the force
	// across concurrent writers.
	SyncAlways = storage.SyncAlways
)

// Key identifies an entity instance.
type Key = entity.Key

// Type declares an entity type.
type Type = entity.Type

// Field declares one entity attribute.
type Field = entity.Field

// ChildCollection declares a hierarchical child set.
type ChildCollection = entity.ChildCollection

// State is the materialised current value of an entity.
type State = entity.State

// Fields is an attribute map.
type Fields = entity.Fields

// Op is one operation descriptor (principle 2.8).
type Op = entity.Op

// Warning describes a constraint violation accepted as a managed exception.
type Warning = entity.Warning

// Txn is one focused transaction.
type Txn = txn.Txn

// CommitResult describes a successful commit.
type CommitResult = txn.CommitResult

// Event is a business event carried between process steps.
type Event = queue.Event

// ProcessDefinition declares a business process as steps connected by events.
type ProcessDefinition = process.Definition

// StepContext is passed to process step handlers.
type StepContext = process.StepContext

// Promise is a tentative business commitment (principle 2.9).
type Promise = apology.Promise

// Apology records a broken promise.
type Apology = apology.Apology

// Migration describes a schema change (section 3.1).
type Migration = migrate.Migration

// Migration strategies.
const (
	// OnlineMigration backfills concurrently with live traffic.
	OnlineMigration = migrate.Online
	// StopTheWorldMigration blocks writers during the backfill.
	StopTheWorldMigration = migrate.StopTheWorld
)

// Field scalar types.
const (
	String    = entity.String
	Int       = entity.Int
	Float     = entity.Float
	Bool      = entity.Bool
	Reference = entity.Reference
)

// Open creates a kernel.
func Open(opts Options) (*Kernel, error) { return core.Open(opts) }

// Bootstrap opens a kernel, registers types and installs the built-in
// propagation step.
func Bootstrap(opts Options, types ...*Type) (*Kernel, error) {
	return core.Bootstrap(opts, types...)
}

// NewProcess declares an empty process definition.
func NewProcess(name string) *ProcessDefinition { return process.NewDefinition(name) }

// StandardTypes returns the entity types used by the examples and the
// benchmark workloads (orders, inventory, accounts, books, offers, leads,
// opportunities).
func StandardTypes() []*Type { return workload.Types() }

// Set returns an operation assigning a root field.
func Set(field string, value interface{}) Op { return entity.Set(field, value) }

// Delta returns a commutative numeric increment (the paper's "deltas").
func Delta(field string, amount float64) Op { return entity.Delta(field, amount) }

// InsertChild returns an operation appending a child row.
func InsertChild(collection, childID string, row Fields) Op {
	return entity.InsertChild(collection, childID, row)
}

// SetChildField returns an operation assigning one field of a child row.
func SetChildField(collection, childID, field string, value interface{}) Op {
	return entity.SetChildField(collection, childID, field, value)
}

// DeleteChild returns an operation tombstoning a child row.
func DeleteChild(collection, childID string) Op { return entity.DeleteChild(collection, childID) }

// Delete returns an operation tombstoning the entity (a mark, not a removal).
func Delete() Op { return entity.Delete() }

// Confirm returns an operation confirming previously tentative state.
func Confirm() Op { return entity.Confirm() }
