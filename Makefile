GO ?= go

.PHONY: build test vet race bench bench-append bench-io bench-storage bench-pool bench-replication bench-lsm bench-slo lsm-race replication-faults storage-faults recovery-smoke slo-smoke linkcheck tables clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The E1..E20 experiment benchmarks (see EXPERIMENTS.md).
bench:
	$(GO) test -run xxx -bench BenchmarkE -benchtime 200x ./...

# The E17 multi-writer append-throughput benchmark on its own: per-append
# locking vs group-commit batching, in-memory and with a per-commit fsync.
bench-append:
	$(GO) test -run xxx -bench BenchmarkE17AppendBatch -benchtime 200x .

# The save/load persistence round-trip benchmark.
bench-io:
	$(GO) test -run xxx -bench BenchmarkSaveLoad -benchtime 50x ./internal/lsdb

# The E18 storage-engine benchmarks on their own: JSON-stream load vs
# checkpointed WAL recovery, and the append overhead of the durable log
# (mem vs WAL vs WAL+fsync).
bench-storage:
	$(GO) test -run xxx -bench BenchmarkE18 -benchtime 20x .

# The E19 work-stealing pool benchmark on its own: workers × entity skew,
# cross-entity scaling vs per-entity serialisation.
bench-pool:
	$(GO) test -run xxx -bench BenchmarkE19 -benchtime 200x .

# The E20 replication benchmark on its own: unreplicated baseline vs
# WAL-shipping at async/sync/quorum ack over simulated 2ms links.
bench-replication:
	$(GO) test -run xxx -bench 'BenchmarkE2[01]' -benchtime 200x .

# The E22 tiered-storage benchmarks on their own: per-append stall during a
# quiesced legacy checkpoint vs an off-hot-path tiered flush, and recovery
# time as history grows — then the harness regenerates the BENCH_E22.json
# trajectory file so successive PRs can diff the numbers.
bench-lsm:
	$(GO) test -run xxx -bench 'BenchmarkE22' -benchtime 200x .
	$(GO) run ./cmd/benchharness -only E22 -json BENCH_E22.json

# The E23 end-to-end SLO run (see docs/BENCHMARKING.md): the open-loop load
# harness drives the four business scenarios against a managed soupsd over a
# million-entity key space, injects a full network partition mid-run, and
# regenerates the BENCH_E23.json trajectory file — latency scoreboard,
# pacing health, acked-write audit and the /metrics cross-check.
bench-slo:
	$(GO) build -o soupsd ./cmd/soupsd
	$(GO) run ./cmd/soupsbench -soupsd ./soupsd \
		-scenarios crm,banking,inventory,bookstore -entities 1000000 \
		-rate 1000 -arrival poisson -seed 7 \
		-warmup 5s -steady 20s -fault-window 5s -recovery 10s \
		-fault partition -check-every 64 \
		-assert-convergence -json BENCH_E23.json

# The tiered-storage suites under the race detector: the LSM store unit
# tests, the lsdb flush/recovery/cold-read suites, the kill-9 crash matrix
# over every mid-flush/mid-compaction site, and the chunk-pool ownership
# tests (CI runs the same set in its tiering job).
lsm-race:
	$(GO) test -race ./internal/lsm/
	$(GO) test -race -run 'TestTiered|TestFlushCompactionCrashMatrix|TestColdEviction|TestCheckpointFailure|TestLegacySnapshot|TestAsOfAndHistory' ./internal/lsdb/
	$(GO) test -race -run 'TestRecycle|TestChunkPool|TestApplyFailureRecycles' ./internal/entity/

# The full replication fault matrix under the race detector: every ack mode
# against seeded partitions, loss, latency and standby crashes, plus the
# failover and divergence suites (CI runs the -short subset).
replication-faults:
	$(GO) test -race -run 'TestFaultMatrix|TestCrossMode|TestFailover|TestDivergent|TestPromiseLimit' ./internal/replica/

# Graceful-degradation suites under the race detector: the storage fault
# matrix across ack modes, degraded read-only modes and repair, breaker and
# retry behaviour, the exhaustive torn-write recovery matrix, admission
# control and deadlines, and the kernel/HTTP 503 surface.
storage-faults:
	$(GO) test -race -run 'TestStorageFaultMatrix|TestEnospc|TestFsync|TestCorruption|TestBreaker|TestShipRetry' ./internal/replica/
	$(GO) test -race -run 'TestFaultBackend|TestWALTornWriteRecoveryMatrix|TestWALMidLogCorruption' ./internal/storage/
	$(GO) test -race -run 'TestMaxDepth|TestRedelivery|TestDeadline|TestExtendLease|TestLaneLeaseRenewal|TestEngineDropsExpired|TestEmitInherits' ./internal/queue/ ./internal/process/
	$(GO) test -race -run 'TestKernelSheds|TestKernelDegraded|TestEventSubmitSheds|TestDegradedStorage|TestEventDeadline' ./internal/core/ ./cmd/soupsd/

# End-to-end crash test: populate a durable soupsd, kill -9, restart from the
# data directory, verify states and a backup/restore round trip — then kill
# a replicated primary -9 and promote one of its two standbys, and finally
# run a node out of disk on a small tmpfs (writes shed 503, reads serve,
# freeing space re-arms; skipped where tmpfs cannot be mounted).
recovery-smoke:
	./scripts/recovery-smoke.sh

# Bounded end-to-end SLO check: the load harness against a real soupsd with
# a partition and a kill -9 injected mid-run, asserting the p999 bound,
# Retry-After on every 503, the measured RTO, and audit convergence (zero
# lost acked writes). Small enough for CI; `make bench-slo` is the full run.
slo-smoke:
	./scripts/slo-smoke.sh

# Verify every relative markdown link in the docs resolves to a real file.
linkcheck:
	./scripts/linkcheck.sh

# Plain-text experiment tables without the Go test machinery; the same run
# refreshes the BENCH_ALL.json trajectory file.
tables:
	$(GO) run ./cmd/benchharness -json BENCH_ALL.json

clean:
	$(GO) clean ./...
	rm -f soupsd soupsctl benchharness soupsbench
