GO ?= go

.PHONY: build test vet race bench tables clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The E1..E16 experiment benchmarks (see EXPERIMENTS.md).
bench:
	$(GO) test -run xxx -bench BenchmarkE -benchtime 200x ./...

# The save/load persistence round-trip benchmark.
bench-io:
	$(GO) test -run xxx -bench BenchmarkSaveLoad -benchtime 50x ./internal/lsdb

# Plain-text experiment tables without the Go test machinery.
tables:
	$(GO) run ./cmd/benchharness

clean:
	$(GO) clean ./...
	rm -f soupsd soupsctl benchharness
