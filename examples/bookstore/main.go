// Command bookstore runs the overbooking scenario of principle 2.9: order
// entry gives every customer an immediate, durable, *tentative* confirmation;
// fulfillment later reconciles the promises against the five copies that
// actually exist, keeps them first-come-first-served and apologises to the
// rest — the separation of Order Entry from Fulfillment that makes the user
// experience intelligible.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	k, err := repro.Bootstrap(repro.Options{Node: "bookstore"}, repro.StandardTypes()...)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer k.Close()

	const stock, demand = 5, 9
	title := repro.Key{Type: "Book", ID: "bestseller"}
	if _, err := k.Update(title, repro.Set("title", "Principles for Inconsistency"), repro.Set("stock", stock)); err != nil {
		log.Fatalf("seed: %v", err)
	}

	// Order entry: every order is accepted immediately as a tentative
	// promise; the customer sees "your order has been received".
	store := workload.NewBookstore(stock, demand)
	var promises []repro.Promise
	for _, order := range store.Orders() {
		p, err := k.UpdateTentative(title, order.Customer, "order-confirmation", float64(order.Qty),
			repro.Delta("stock", -float64(order.Qty)).Described("tentative sale to "+order.Customer))
		if err != nil {
			log.Fatalf("order entry: %v", err)
		}
		promises = append(promises, p)
		fmt.Printf("order entry: %s -> order received (promise %s)\n", order.Customer, p.ID)
	}
	state, _ := k.Read(title)
	fmt.Printf("\nsubjective stock after order entry: %d (tentative=%v)\n", state.Int("stock"), state.Tentative)

	// Fulfillment: reconcile against the copies that really exist.
	kept, apologies, err := k.ResolveOverbooking(title, stock, "only 5 copies were in stock", "full refund and 10% voucher")
	if err != nil {
		log.Fatalf("fulfillment: %v", err)
	}
	fmt.Printf("\nfulfillment kept %d promises and issued %d apologies:\n", kept, len(apologies))
	for _, a := range apologies {
		fmt.Println("  " + a.String())
	}
	state, _ = k.Read(title)
	fmt.Printf("\nfinal stock: %d, apology rate: %.2f\n", state.Int("stock"), k.Ledger().ApologyRate())
	_ = promises
}
