// Command ordertocash runs the CRM-to-ERP data lifecycle of principle 2.2:
// leads are entered first, opportunities and orders may reference customers
// that have not been entered yet, and the kernel accepts the out-of-order
// data as managed exceptions instead of refusing it. A process pipeline
// (order.created -> inventory.reserve -> shipment.create) then drives the
// back-end steps, one focused transaction per step (principles 2.4-2.6).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	k, err := repro.Bootstrap(repro.Options{Node: "o2c", Units: 3}, repro.StandardTypes()...)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer k.Close()

	// Back-end pipeline: each step updates exactly one entity and emits the
	// event that schedules the next step.
	pipeline := repro.NewProcess("order-to-cash")
	pipeline.Step("order.created", func(ctx *repro.StepContext) error {
		if err := ctx.Txn.Update(ctx.Event.Entity, repro.Set("status", "CONFIRMED")); err != nil {
			return err
		}
		ctx.Emit(repro.Event{
			Name:   "inventory.reserve",
			Entity: repro.Key{Type: "Inventory", ID: "widget"},
			Data:   map[string]interface{}{"order": ctx.Event.Entity.ID},
		})
		ctx.Audit("order %s confirmed", ctx.Event.Entity.ID)
		return nil
	})
	pipeline.Step("inventory.reserve", func(ctx *repro.StepContext) error {
		order := fmt.Sprint(ctx.Event.Data["order"])
		if err := ctx.Txn.Update(ctx.Event.Entity,
			repro.Delta("onhand", -1).Described("reserved 1 widget for "+order)); err != nil {
			return err
		}
		ctx.Emit(repro.Event{Name: "shipment.create", Entity: repro.Key{Type: "Order", ID: order}})
		return nil
	})
	pipeline.Step("shipment.create", func(ctx *repro.StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, repro.Set("status", "SHIPMENT-PLANNED"))
	})
	if err := k.DefineProcess(pipeline); err != nil {
		log.Fatalf("define process: %v", err)
	}

	// Front-end data entry, 30% of cases out of order.
	gen := workload.NewOrderToCash(2026, 0.3)
	const cases = 20
	for i := 0; i < cases; i++ {
		for _, ev := range gen.NextCase() {
			if _, err := k.Update(ev.Key, ev.Ops...); err != nil {
				log.Fatalf("data entry rejected (%s): %v", ev.Key, err)
			}
			if ev.Kind == "order" {
				if err := k.Submit(repro.Event{Name: "order.created", Entity: ev.Key, TxnID: "entry-" + ev.Key.ID}); err != nil {
					log.Fatalf("submit: %v", err)
				}
			}
		}
	}

	steps := k.Drain()
	stats := k.ProcessStats()
	fmt.Printf("entered %d business cases; executed %d process steps (%d events emitted)\n",
		cases, steps, stats.EventsEmitted)
	fmt.Printf("managed constraint violations (out-of-order references): %d\n", len(k.Warnings()))

	inv, err := k.Read(repro.Key{Type: "Inventory", ID: "widget"})
	if err != nil {
		log.Fatalf("read inventory: %v", err)
	}
	fmt.Printf("widget on-hand after reservations: %d (negative stock is tracked, not refused)\n", inv.Int("onhand"))

	confirmed := 0
	k.Query("Order", func(st *repro.State) bool {
		if st.StringField("status") == "SHIPMENT-PLANNED" {
			confirmed++
		}
		return true
	})
	fmt.Printf("orders with planned shipments: %d of %d\n", confirmed, cases)
}
