// Command banking runs the insert-only account scenario of principle 2.8 on
// an active/active replica cluster: deposits and withdrawals are recorded as
// operations (not just resulting balances) at different replicas, replicas
// diverge while a partition is in place, and anti-entropy merges the
// operation logs losslessly after healing because deltas commute (principles
// 2.7 and 2.10).
package main

import (
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/workload"
)

func main() {
	cluster, err := replica.NewCluster(3, replica.Eventual, netsim.Config{}, workload.AccountType())
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Stop()

	account := entity.Key{Type: "Account", ID: "ACC-1"}
	gen := workload.NewBanking(99, 1, 1.1)

	// Normal operation: writes at any replica propagate asynchronously.
	r0, _ := cluster.Replica(0)
	r1, _ := cluster.Replica(1)
	r2, _ := cluster.Replica(2)
	for i := 0; i < 10; i++ {
		op := gen.Next()
		op.Account = account
		if _, err := r0.Write(op.Account, op.Ops(), ""); err != nil {
			log.Fatalf("write: %v", err)
		}
	}
	cluster.Network().Quiesce()
	st, _ := r2.ReadResolved(account)
	fmt.Printf("after 10 operations, replica r2 sees balance %.2f with %d entries\n",
		st.Float("balance"), len(st.LiveChildren("entries")))

	// Partition: both sides keep serving their users (principle 2.11).
	fmt.Println("partitioning r0 away from r1,r2 ...")
	cluster.Network().Partition([]clock.NodeID{"r0"}, []clock.NodeID{"r1", "r2"})
	if _, err := r0.Write(account, workload.BankOp{Account: account, Amount: 100, EntryID: "minority-dep", Describe: "deposit 100 during partition"}.Ops(), ""); err != nil {
		log.Fatalf("minority write: %v", err)
	}
	if _, err := r1.Write(account, workload.BankOp{Account: account, Amount: -40, EntryID: "majority-wd", Describe: "withdrawal 40 during partition"}.Ops(), ""); err != nil {
		log.Fatalf("majority write: %v", err)
	}
	cluster.Network().Quiesce()
	s0, _ := r0.ReadResolved(account)
	s1, _ := r1.ReadResolved(account)
	fmt.Printf("during the partition: r0 balance=%.2f, r1 balance=%.2f (subjective views differ)\n",
		s0.Float("balance"), s1.Float("balance"))

	// Heal and reconcile: the union of operation logs converges, no update is
	// lost, and the balance is the sum of all deposits and withdrawals.
	cluster.Network().Heal()
	for i := 0; i < 5; i++ {
		cluster.SyncRound()
	}
	converged, _ := cluster.Converged(account)
	final, _ := r2.ReadResolved(account)
	fmt.Printf("after healing: converged=%v, balance=%.2f, entries=%d (every operation preserved)\n",
		converged, final.Float("balance"), len(final.LiveChildren("entries")))
}
