// Command inventory runs the negative-inventory scenario of principle 2.1:
// packers consume stock the system does not know about yet, on-hand levels go
// negative, the full history explains how, and a deferred aggregate keeps a
// per-plant total that is allowed to lag the primary data (principle 2.3).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	k, err := repro.Bootstrap(repro.Options{Node: "inventory", Units: 2}, repro.StandardTypes()...)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer k.Close()

	// Deferred secondary data: total stock per plant.
	k.DefineSumAggregate("stock-by-plant", "Inventory", "onhand", "plant")

	// Assign items to plants.
	const items = 10
	for i := 0; i < items; i++ {
		key := repro.Key{Type: "Inventory", ID: fmt.Sprintf("item-%d", i)}
		plant := "plant-A"
		if i%2 == 1 {
			plant = "plant-B"
		}
		if _, err := k.Update(key, repro.Set("plant", plant)); err != nil {
			log.Fatalf("seed: %v", err)
		}
	}

	// Goods receipts and pickings; pick-heavy so some items go negative.
	gen := workload.NewInventory(7, items, 1.2, 0.65)
	for i := 0; i < 300; i++ {
		move := gen.Next()
		if _, err := k.Update(move.Item, move.Ops()...); err != nil {
			log.Fatalf("movement: %v", err)
		}
	}

	// Report negative items and show the audit trail for one of them.
	negative := 0
	var sample repro.Key
	k.Query("Inventory", func(st *repro.State) bool {
		if st.Int("onhand") < 0 {
			negative++
			if sample.ID == "" {
				sample = st.Key
			}
		}
		return true
	})
	fmt.Printf("%d of %d items have negative on-hand stock\n", negative, items)
	if sample.ID != "" {
		h, err := k.History(sample)
		if err != nil {
			log.Fatalf("history: %v", err)
		}
		fmt.Printf("history that led %s negative (last 5 movements):\n", sample.ID)
		trace := h.Trace()
		if len(trace) > 5 {
			trace = trace[len(trace)-5:]
		}
		for _, line := range trace {
			fmt.Println("  " + line)
		}
	}

	// The deferred aggregate lags until the maintainer catches up.
	fmt.Printf("aggregate staleness before catch-up: %d unprocessed records\n", k.AggregateStaleness())
	k.CatchUpAggregates()
	a, _ := k.Sum("stock-by-plant", "plant-A")
	b, _ := k.Sum("stock-by-plant", "plant-B")
	fmt.Printf("total on-hand after catch-up: plant-A=%.0f plant-B=%.0f\n", a, b)
}
