// Command quickstart shows the minimal use of the kernel: open it, write an
// entity with focused transactions, read it back subjectively, and inspect
// its insert-only history.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	k, err := repro.Bootstrap(repro.Options{Node: "quickstart", Units: 2}, repro.StandardTypes()...)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer k.Close()

	account := repro.Key{Type: "Account", ID: "ACC-1001"}

	// Every write is one focused transaction on one entity (principle 2.5).
	// Operations describe what happened, not just the consequence (2.8), and
	// numeric changes are commutative deltas (2.7).
	if _, err := k.Update(account,
		repro.Set("owner", "Ada Lovelace"),
		repro.Delta("balance", 250).Described("opening deposit of 250"),
	); err != nil {
		log.Fatalf("open account: %v", err)
	}
	if _, err := k.Update(account,
		repro.InsertChild("entries", "E1", repro.Fields{"kind": "withdrawal", "amount": -75.0}),
		repro.Delta("balance", -75).Described("ATM withdrawal of 75"),
	); err != nil {
		log.Fatalf("withdraw: %v", err)
	}

	// Subjective read: what this node currently knows (principle 2.1).
	state, err := k.Read(account)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("account %s: owner=%s balance=%.2f entries=%d\n",
		account.ID, state.StringField("owner"), state.Float("balance"), len(state.LiveChildren("entries")))

	// The full history is retained (principle 2.7: updates are inserts).
	history, err := k.History(account)
	if err != nil {
		log.Fatalf("history: %v", err)
	}
	fmt.Println("history:")
	for _, line := range history.Trace() {
		fmt.Println("  " + line)
	}

	// Deferred secondary data (principle 2.3): a balance-sum aggregate that
	// lags the primary until the maintainer catches up.
	k.DefineSumAggregate("total-deposits", "Account", "balance", "")
	fmt.Printf("aggregate before catch-up: staleness=%d records\n", k.AggregateStaleness())
	k.CatchUpAggregates()
	total, _ := k.Sum("total-deposits", "")
	fmt.Printf("aggregate after catch-up: total balance=%.2f\n", total)
}
