#!/usr/bin/env bash
# Markdown link check: every relative link target in the repo's markdown
# files must resolve to an existing file or directory. External links
# (http/https/mailto) and pure in-page anchors are skipped; a #fragment on a
# relative link is stripped before the existence check. This is the CI guard
# that keeps README/DESIGN/EXPERIMENTS/docs from rotting as files move.
set -euo pipefail

cd "$(dirname "$0")/.."

files=$(find . -path ./.git -prune -o -name '*.md' -print | sort)

broken=0
for f in $files; do
  dir=$(dirname "$f")
  # Extract inline link targets: ](target)
  targets=$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip a trailing #fragment and any "title" suffix.
    target="${target%%#*}"
    target="${target%% *}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "broken link in $f: $target"
      broken=1
    fi
  done <<EOF
$targets
EOF
done

if [ "$broken" -ne 0 ]; then
  echo "FAIL: broken markdown links found" >&2
  exit 1
fi
echo "ok: all relative markdown links resolve"
