#!/usr/bin/env bash
# Recovery smoke test: populate a durable soupsd node, kill it hard (-9, no
# shutdown flush), restart it from the data directory alone, and verify the
# states and a backup/restore round trip. This is the end-to-end check that
# the storage engine's crash story holds outside the Go test harness.
# A second act runs the replicated failover story: a primary shipping its WAL
# to two standbys is killed -9 and one standby is promoted in its place.
set -euo pipefail

PORT="${PORT:-18473}"
SB1_PORT=$((PORT + 1))
SB2_PORT=$((PORT + 2))
SERVER="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="${WORK}/data"
trap 'for p in "${PID:-}" "${SB1_PID:-}" "${SB2_PID:-}"; do [ -n "${p}" ] && kill -9 "${p}" 2>/dev/null || true; done; rm -rf "${WORK}"' EXIT

echo "== build"
go build -o "${WORK}/soupsd" ./cmd/soupsd
go build -o "${WORK}/soupsctl" ./cmd/soupsctl
ctl() { "${WORK}/soupsctl" -server "${SERVER}" "$@"; }

wait_up() {
  for _ in $(seq 1 50); do
    if ctl metrics >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "soupsd did not come up" >&2
  exit 1
}

echo "== start durable node"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always >"${WORK}/soupsd1.log" 2>&1 &
PID=$!
wait_up

echo "== populate"
ctl set Order O-1 status=OPEN total=99.5 >/dev/null
ctl set Account A-1 owner=alice >/dev/null
for i in $(seq 1 20); do
  ctl delta Account A-1 balance=5 >/dev/null
done
ctl backup "${WORK}/backup.ndjson" 2>/dev/null

echo "== hard kill (no flush)"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true

echo "== restart from data dir"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always >"${WORK}/soupsd2.log" 2>&1 &
PID=$!
wait_up

balance="$(ctl get Account A-1 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
status="$(ctl get Order O-1 | grep -o '"status": "[A-Z]*"' || true)"
if [ "${balance}" != "100" ]; then
  echo "FAIL: balance after recovery = '${balance}', want 100" >&2
  exit 1
fi
if [ "${status}" != '"status": "OPEN"' ]; then
  echo "FAIL: order status lost after recovery" >&2
  exit 1
fi
echo "ok: states survived kill -9 (balance=${balance})"

echo "== restore backup into a fresh node"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
rm -rf "${DATA}"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 \
  -data-dir "${DATA}" >"${WORK}/soupsd3.log" 2>&1 &
PID=$!
wait_up
ctl restore "${WORK}/backup.ndjson" >/dev/null
balance="$(ctl get Account A-1 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "100" ]; then
  echo "FAIL: balance after restore = '${balance}', want 100" >&2
  exit 1
fi
echo "ok: backup/restore round trip (balance=${balance})"

echo "== three-node failover: primary + two standbys, kill -9, promote"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
PID=""
rm -rf "${DATA}"

ctl1() { "${WORK}/soupsctl" -server "http://127.0.0.1:${SB1_PORT}" "$@"; }
ctl2() { "${WORK}/soupsctl" -server "http://127.0.0.1:${SB2_PORT}" "$@"; }

"${WORK}/soupsd" -addr "127.0.0.1:${SB1_PORT}" -role standby -units 2 \
  -data-dir "${WORK}/sb1" -fsync-mode always >"${WORK}/sb1.log" 2>&1 &
SB1_PID=$!
"${WORK}/soupsd" -addr "127.0.0.1:${SB2_PORT}" -role standby -units 2 \
  -data-dir "${WORK}/sb2" -fsync-mode always >"${WORK}/sb2.log" 2>&1 &
SB2_PID=$!
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always \
  -standbys "http://127.0.0.1:${SB1_PORT},http://127.0.0.1:${SB2_PORT}" \
  -ack sync >"${WORK}/primary.log" 2>&1 &
PID=$!
wait_up

echo "== populate through the replicated primary"
ctl set Account A-2 owner=carol >/dev/null
for i in $(seq 1 15); do
  ctl delta Account A-2 balance=4 >/dev/null
done

# A standby serves metrics but refuses data until promoted.
if ctl1 get Account A-2 >/dev/null 2>&1; then
  echo "FAIL: unpromoted standby answered a data read" >&2
  exit 1
fi
received="$(ctl1 metrics | grep -o 'replication.records_received [0-9]*' | grep -o '[0-9]*$')"
if [ "${received}" -lt 16 ]; then
  echo "FAIL: standby received ${received} records, want >= 16" >&2
  exit 1
fi

echo "== kill -9 the primary, promote standby 1"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
PID=""
ctl1 promote >/dev/null

balance="$(ctl1 get Account A-2 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "60" ]; then
  echo "FAIL: balance on promoted standby = '${balance}', want 60" >&2
  exit 1
fi
# The promoted node is a full primary: it takes writes.
ctl1 delta Account A-2 balance=4 >/dev/null
balance="$(ctl1 get Account A-2 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "64" ]; then
  echo "FAIL: balance after post-promotion write = '${balance}', want 64" >&2
  exit 1
fi
# The second standby kept its own synchronously acked copy of the stream.
received2="$(ctl2 metrics | grep -o 'replication.records_received [0-9]*' | grep -o '[0-9]*$')"
if [ "${received2}" -lt 16 ]; then
  echo "FAIL: surviving standby holds ${received2} records, want >= 16" >&2
  exit 1
fi
echo "ok: failover (acked writes survived, promoted node live, peer standby intact)"
echo "PASS"
