#!/usr/bin/env bash
# Recovery smoke test: populate a durable soupsd node, kill it hard (-9, no
# shutdown flush), restart it from the data directory alone, and verify the
# states and a backup/restore round trip. This is the end-to-end check that
# the storage engine's crash story holds outside the Go test harness.
set -euo pipefail

PORT="${PORT:-18473}"
SERVER="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="${WORK}/data"
trap 'if [ -n "${PID:-}" ]; then kill -9 "${PID}" 2>/dev/null || true; fi; rm -rf "${WORK}"' EXIT

echo "== build"
go build -o "${WORK}/soupsd" ./cmd/soupsd
go build -o "${WORK}/soupsctl" ./cmd/soupsctl
ctl() { "${WORK}/soupsctl" -server "${SERVER}" "$@"; }

wait_up() {
  for _ in $(seq 1 50); do
    if ctl metrics >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "soupsd did not come up" >&2
  exit 1
}

echo "== start durable node"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always >"${WORK}/soupsd1.log" 2>&1 &
PID=$!
wait_up

echo "== populate"
ctl set Order O-1 status=OPEN total=99.5 >/dev/null
ctl set Account A-1 owner=alice >/dev/null
for i in $(seq 1 20); do
  ctl delta Account A-1 balance=5 >/dev/null
done
ctl backup "${WORK}/backup.ndjson" 2>/dev/null

echo "== hard kill (no flush)"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true

echo "== restart from data dir"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always >"${WORK}/soupsd2.log" 2>&1 &
PID=$!
wait_up

balance="$(ctl get Account A-1 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
status="$(ctl get Order O-1 | grep -o '"status": "[A-Z]*"' || true)"
if [ "${balance}" != "100" ]; then
  echo "FAIL: balance after recovery = '${balance}', want 100" >&2
  exit 1
fi
if [ "${status}" != '"status": "OPEN"' ]; then
  echo "FAIL: order status lost after recovery" >&2
  exit 1
fi
echo "ok: states survived kill -9 (balance=${balance})"

echo "== restore backup into a fresh node"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
rm -rf "${DATA}"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 \
  -data-dir "${DATA}" >"${WORK}/soupsd3.log" 2>&1 &
PID=$!
wait_up
ctl restore "${WORK}/backup.ndjson" >/dev/null
balance="$(ctl get Account A-1 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "100" ]; then
  echo "FAIL: balance after restore = '${balance}', want 100" >&2
  exit 1
fi
echo "ok: backup/restore round trip (balance=${balance})"
echo "PASS"
