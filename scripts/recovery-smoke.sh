#!/usr/bin/env bash
# Recovery smoke test: populate a durable soupsd node, kill it hard (-9, no
# shutdown flush), restart it from the data directory alone, and verify the
# states and a backup/restore round trip. This is the end-to-end check that
# the storage engine's crash story holds outside the Go test harness.
# A second act exercises the tiered (LSM) layout: forced flushes build
# level-0 SSTables, the background compactor merges them, and a kill -9 node
# recovers from the newest tables plus the WAL tail.
# A third act runs the replicated failover story: a primary shipping its WAL
# to two standbys is killed -9 and one standby is promoted in its place.
# A final act runs the node out of disk on a small tmpfs: writes must shed
# with 503 while reads keep serving, and freeing space must re-arm the node
# without a restart. (Skipped gracefully where tmpfs cannot be mounted.)
set -euo pipefail

PORT="${PORT:-18473}"
SB1_PORT=$((PORT + 1))
SB2_PORT=$((PORT + 2))
SERVER="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="${WORK}/data"

cleanup() {
  for p in "${PID:-}" "${SB1_PID:-}" "${SB2_PID:-}"; do
    [ -n "${p}" ] && kill -9 "${p}" 2>/dev/null || true
  done
  if [ -n "${TMPFS_MOUNTED:-}" ]; then
    umount "${WORK}/full" 2>/dev/null ||
      { command -v sudo >/dev/null 2>&1 && sudo -n umount "${WORK}/full" 2>/dev/null; } || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== build"
go build -o "${WORK}/soupsd" ./cmd/soupsd
go build -o "${WORK}/soupsctl" ./cmd/soupsctl
ctl() { "${WORK}/soupsctl" -server "${SERVER}" "$@"; }

wait_up() {
  for _ in $(seq 1 50); do
    if ctl metrics >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "soupsd did not come up" >&2
  exit 1
}

echo "== start durable node"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always >"${WORK}/soupsd1.log" 2>&1 &
PID=$!
wait_up

echo "== populate"
ctl set Order O-1 status=OPEN total=99.5 >/dev/null
ctl set Account A-1 owner=alice >/dev/null
for i in $(seq 1 20); do
  ctl delta Account A-1 balance=5 >/dev/null
done
ctl backup "${WORK}/backup.ndjson" 2>/dev/null

echo "== hard kill (no flush)"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true

echo "== restart from data dir"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always >"${WORK}/soupsd2.log" 2>&1 &
PID=$!
wait_up

balance="$(ctl get Account A-1 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
status="$(ctl get Order O-1 | grep -o '"status": "[A-Z]*"' || true)"
if [ "${balance}" != "100" ]; then
  echo "FAIL: balance after recovery = '${balance}', want 100" >&2
  exit 1
fi
if [ "${status}" != '"status": "OPEN"' ]; then
  echo "FAIL: order status lost after recovery" >&2
  exit 1
fi
echo "ok: states survived kill -9 (balance=${balance})"

echo "== restore backup into a fresh node"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
rm -rf "${DATA}"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 \
  -data-dir "${DATA}" >"${WORK}/soupsd3.log" 2>&1 &
PID=$!
wait_up
ctl restore "${WORK}/backup.ndjson" >/dev/null
balance="$(ctl get Account A-1 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "100" ]; then
  echo "FAIL: balance after restore = '${balance}', want 100" >&2
  exit 1
fi
echo "ok: backup/restore round trip (balance=${balance})"

echo "== tiered storage: flushes + background compaction survive kill -9"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
rm -rf "${DATA}"
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always \
  -flush-bytes 2048 -compaction-after 2 >"${WORK}/lsm1.log" 2>&1 &
PID=$!
wait_up

ctl set Account A-4 owner=dave >/dev/null
for i in $(seq 1 25); do
  ctl delta Account A-4 balance=3 >/dev/null
done
# Force a flush boundary, keep writing, force another: at least two level-0
# tables accumulate, which is exactly the backlog -compaction-after 2 hands
# to the background compactor.
ctl checkpoint >/dev/null
for i in $(seq 1 25); do
  ctl delta Account A-4 balance=3 >/dev/null
done
ctl checkpoint >/dev/null
# One more write so recovery also replays a WAL tail on top of the tables.
ctl delta Account A-4 balance=3 >/dev/null

tables="$( (ctl metrics | grep -o 'lsm.tables [0-9]*' | grep -o '[0-9]*$') || true)"
if [ "${tables:-0}" -lt 1 ]; then
  echo "FAIL: no SSTables after two forced flushes (lsm.tables=${tables:-0})" >&2
  ctl metrics >&2 || true
  exit 1
fi
compactions=""
for _ in $(seq 1 50); do
  compactions="$( (ctl metrics | grep -o 'lsm.compactions [0-9]*' | grep -o '[0-9]*$') || true)"
  if [ "${compactions:-0}" -ge 1 ]; then break; fi
  sleep 0.1
done
if [ "${compactions:-0}" -lt 1 ]; then
  echo "FAIL: background compactor never ran (lsm.compactions=${compactions:-0})" >&2
  ctl metrics >&2 || true
  exit 1
fi

echo "== kill -9 the tiered node, restart, recover from tables + WAL tail"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always \
  -flush-bytes 2048 -compaction-after 2 >"${WORK}/lsm2.log" 2>&1 &
PID=$!
wait_up

balance="$(ctl get Account A-4 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "153" ]; then
  echo "FAIL: balance after tiered recovery = '${balance}', want 153" >&2
  exit 1
fi
tables="$( (ctl metrics | grep -o 'lsm.tables [0-9]*' | grep -o '[0-9]*$') || true)"
if [ "${tables:-0}" -lt 1 ]; then
  echo "FAIL: recovered tiered node reports no SSTables (lsm.tables=${tables:-0})" >&2
  ctl metrics >&2 || true
  exit 1
fi
echo "ok: tiered recovery from tables + tail (balance=${balance}, tables=${tables}, compactions=${compactions})"

echo "== three-node failover: primary + two standbys, kill -9, promote"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
PID=""
rm -rf "${DATA}"

ctl1() { "${WORK}/soupsctl" -server "http://127.0.0.1:${SB1_PORT}" "$@"; }
ctl2() { "${WORK}/soupsctl" -server "http://127.0.0.1:${SB2_PORT}" "$@"; }

"${WORK}/soupsd" -addr "127.0.0.1:${SB1_PORT}" -role standby -units 2 \
  -data-dir "${WORK}/sb1" -fsync-mode always >"${WORK}/sb1.log" 2>&1 &
SB1_PID=$!
"${WORK}/soupsd" -addr "127.0.0.1:${SB2_PORT}" -role standby -units 2 \
  -data-dir "${WORK}/sb2" -fsync-mode always >"${WORK}/sb2.log" 2>&1 &
SB2_PID=$!
"${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 -groupcommit \
  -data-dir "${DATA}" -fsync-mode always \
  -standbys "http://127.0.0.1:${SB1_PORT},http://127.0.0.1:${SB2_PORT}" \
  -ack sync >"${WORK}/primary.log" 2>&1 &
PID=$!
wait_up

echo "== populate through the replicated primary"
ctl set Account A-2 owner=carol >/dev/null
for i in $(seq 1 15); do
  ctl delta Account A-2 balance=4 >/dev/null
done

# A standby serves metrics but refuses data until promoted.
if ctl1 get Account A-2 >/dev/null 2>&1; then
  echo "FAIL: unpromoted standby answered a data read" >&2
  exit 1
fi
received="$(ctl1 metrics | grep -o 'replication.records_received [0-9]*' | grep -o '[0-9]*$')"
if [ "${received}" -lt 16 ]; then
  echo "FAIL: standby received ${received} records, want >= 16" >&2
  exit 1
fi

echo "== kill -9 the primary, promote standby 1"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
PID=""
ctl1 promote >/dev/null

balance="$(ctl1 get Account A-2 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "60" ]; then
  echo "FAIL: balance on promoted standby = '${balance}', want 60" >&2
  exit 1
fi
# The promoted node is a full primary: it takes writes.
ctl1 delta Account A-2 balance=4 >/dev/null
balance="$(ctl1 get Account A-2 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*')"
if [ "${balance}" != "64" ]; then
  echo "FAIL: balance after post-promotion write = '${balance}', want 64" >&2
  exit 1
fi
# The second standby kept its own synchronously acked copy of the stream.
received2="$(ctl2 metrics | grep -o 'replication.records_received [0-9]*' | grep -o '[0-9]*$')"
if [ "${received2}" -lt 16 ]; then
  echo "FAIL: surviving standby holds ${received2} records, want >= 16" >&2
  exit 1
fi
echo "ok: failover (acked writes survived, promoted node live, peer standby intact)"

echo "== disk full: writes shed, reads serve, freeing space re-arms"
for p in "${SB1_PID}" "${SB2_PID}"; do
  kill -9 "${p}" 2>/dev/null || true
  wait "${p}" 2>/dev/null || true
done
SB1_PID=""
SB2_PID=""

FULL="${WORK}/full"
mkdir -p "${FULL}"
TMPFS_MOUNTED=""
if mount -t tmpfs -o size=1m tmpfs "${FULL}" 2>/dev/null; then
  TMPFS_MOUNTED=1
elif command -v sudo >/dev/null 2>&1 &&
  sudo -n mount -t tmpfs -o size=1m tmpfs "${FULL}" 2>/dev/null; then
  TMPFS_MOUNTED=1
fi
if [ -z "${TMPFS_MOUNTED}" ]; then
  echo "skip: cannot mount a 1m tmpfs here (no privilege); disk-full act not run"
else
  "${WORK}/soupsd" -addr "127.0.0.1:${PORT}" -units 2 \
    -data-dir "${FULL}/data" -fsync-mode always >"${WORK}/full.log" 2>&1 &
  PID=$!
  wait_up
  ctl set Account A-3 owner=erin >/dev/null
  ctl delta Account A-3 balance=5 >/dev/null

  # Eat the remaining space, then write until the WAL hits ENOSPC. The node
  # must refuse the write synchronously, not accept and lose it. The probe
  # payload spans pages so a partially-filled tmpfs page cannot absorb it.
  dd if=/dev/zero of="${FULL}/filler" bs=1k count=2048 2>/dev/null || true
  blob="$(printf 'x%.0s' $(seq 1 8192))"
  shed=""
  for i in $(seq 1 5); do
    if ! ctl set Account "A-FILL-${i}" owner="${blob}" >/dev/null 2>&1; then
      shed=1
      break
    fi
  done
  if [ -z "${shed}" ]; then
    echo "FAIL: 5 page-sized writes landed on a full 1m disk without a refusal" >&2
    exit 1
  fi
  # Degraded read-only: reads still serve, the operator surface says so, and
  # the HTTP layer sheds with 503 + Retry-After (header check when curl is
  # around; soupsctl only reports the non-2xx exit).
  balance="$( (ctl get Account A-3 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*') || true)"
  if [ -z "${balance}" ]; then
    echo "FAIL: read refused while degraded (reads must keep serving)" >&2
    exit 1
  fi
  # grep without -q drains the whole stream: -q exits on first match and can
  # SIGPIPE soupsctl mid-write, which pipefail then reads as a miss.
  if ! ctl status | grep 'DEGRADED' >/dev/null; then
    echo "FAIL: soupsctl status does not report the degraded unit" >&2
    ctl status >&2 || true
    exit 1
  fi
  if command -v curl >/dev/null 2>&1; then
    code="$(curl -s -o /dev/null -w '%{http_code}' "${SERVER}/readyz")"
    if [ "${code}" != "503" ]; then
      echo "FAIL: /readyz = ${code} while degraded, want 503" >&2
      exit 1
    fi
    if ! curl -s -D - -o /dev/null "${SERVER}/readyz" | grep -qi '^Retry-After:'; then
      echo "FAIL: degraded /readyz carries no Retry-After hint" >&2
      exit 1
    fi
  fi

  # Freeing space is the whole fix for ENOSPC: the next write after the
  # re-arm window probes the backend and clears the degradation in place.
  rm -f "${FULL}/filler"
  recovered=""
  for _ in $(seq 1 50); do
    if ctl delta Account A-3 balance=5 >/dev/null 2>&1; then
      recovered=1
      break
    fi
    sleep 0.2
  done
  if [ -z "${recovered}" ]; then
    echo "FAIL: node did not re-arm within 10s of space freeing" >&2
    ctl status >&2 || true
    exit 1
  fi
  want=$((balance + 5))
  balance="$( (ctl get Account A-3 | grep -o '"balance": [0-9]*' | grep -o '[0-9]*') || true)"
  if [ "${balance}" != "${want}" ]; then
    echo "FAIL: balance after re-arm = '${balance}', want ${want}" >&2
    exit 1
  fi
  if ctl status | grep 'DEGRADED' >/dev/null; then
    echo "FAIL: unit still degraded after a successful probe write" >&2
    exit 1
  fi
  echo "ok: disk full shed writes, served reads, re-armed on space (balance=${balance})"
fi

echo "PASS"
