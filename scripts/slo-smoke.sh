#!/usr/bin/env bash
# SLO smoke test: a bounded end-to-end run of the open-loop load harness
# (cmd/soupsbench) against a real soupsd, with a fault injected mid-run and
# the SLO assertions turned on. Two acts:
#
#   1. Network partition mid-run: warmup -> steady -> full partition ->
#      recovery, asserting the steady-state submit p999 bound, that every 503
#      carried Retry-After, and that the acked-write audit converges (no
#      acked write lost, client-side fault errors never applied).
#   2. kill -9 mid-run: the harness SIGKILLs its managed soupsd inside the
#      fault window, restarts it from the data directory, measures RTO from
#      kill to the first ready probe, and re-runs the audit across the crash.
#
# The per-run knobs are deliberately small (seconds, hundreds of req/s) so
# the whole script stays under a minute on a CI runner; `make bench-slo` is
# the full-size version that regenerates BENCH_E23.json.
set -euo pipefail

PORT="${PORT:-18491}"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

# CI runners are noisy neighbours: the p999 bound is an existence proof that
# the assertion machinery trips on real regressions, not a latency promise.
# Local hardware comfortably holds two orders of magnitude below this.
P999_BOUND="${P999_BOUND:-1s}"
RTO_BOUND="${RTO_BOUND:-15s}"
RATE="${RATE:-300}"

echo "== build"
go build -o "${WORK}/soupsd" ./cmd/soupsd
go build -o "${WORK}/soupsbench" ./cmd/soupsbench

echo "== act 1: partition mid-run (p999 + Retry-After + audit convergence)"
"${WORK}/soupsbench" \
  -soupsd "${WORK}/soupsd" -addr "127.0.0.1:${PORT}" \
  -scenarios crm,banking,inventory,bookstore -entities 1000000 \
  -rate "${RATE}" -arrival poisson -seed 7 \
  -warmup 2s -steady 6s -fault-window 3s -recovery 5s \
  -fault partition -check-every 32 \
  -assert-p999 "${P999_BOUND}" -assert-convergence \
  -json "${WORK}/BENCH_E23.json"

if ! grep -q '"experiment": "E23"' "${WORK}/BENCH_E23.json"; then
  echo "FAIL: soupsbench did not write E23 trajectory tables" >&2
  exit 1
fi

echo "== act 2: kill -9 mid-run (RTO + audit convergence across the crash)"
"${WORK}/soupsbench" \
  -soupsd "${WORK}/soupsd" -addr "127.0.0.1:$((PORT + 1))" \
  -data-dir "${WORK}/data" \
  -scenarios banking -entities 1000000 \
  -rate "${RATE}" -arrival poisson -seed 11 \
  -warmup 2s -steady 4s -fault-window 4s -recovery 5s \
  -fault kill9 -check-every 32 \
  -assert-rto "${RTO_BOUND}" -assert-convergence

echo "PASS"
